//! Property tests for seeding: index exactness, anchor enumeration, and
//! filter invariants.

use fastz_genome::Sequence;
use fastz_seed::{band_filter, filter_anchors, find_anchors, Anchor, SeedIndex, SeedShape};
use proptest::prelude::*;

fn seq_strategy(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, 20..max)
}

fn anchors_strategy() -> impl Strategy<Value = Vec<Anchor>> {
    proptest::collection::vec((0u32..5_000, 0u32..5_000), 0..200).prop_map(|mut v| {
        // find_anchors order: by query_pos, then target_pos.
        v.sort_by_key(|&(t, q)| (q, t));
        v.into_iter()
            .map(|(target_pos, query_pos)| Anchor {
                target_pos,
                query_pos,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every anchor the index reports is a true seed match, and no true
    /// match is missed (spot-checked against a brute-force scan).
    #[test]
    fn index_is_exact(t in seq_strategy(400), q in seq_strategy(200), k in 4usize..9) {
        let target = Sequence::from_codes("t", t);
        let query = Sequence::from_codes("q", q);
        let shape = SeedShape::exact(k);
        let idx = SeedIndex::build(&target, shape.clone());
        let mut found = find_anchors(&idx, &query);
        found.sort_by_key(|a| (a.query_pos, a.target_pos));
        let mut naive = Vec::new();
        if target.len() >= shape.span() && query.len() >= shape.span() {
            for qpos in 0..=query.len() - shape.span() {
                for tpos in 0..=target.len() - shape.span() {
                    if shape.matches(target.codes(), tpos, query.codes(), qpos) {
                        naive.push(Anchor { target_pos: tpos as u32, query_pos: qpos as u32 });
                    }
                }
            }
        }
        naive.sort_by_key(|a| (a.query_pos, a.target_pos));
        prop_assert_eq!(found, naive);
    }

    /// Filters only ever remove anchors, keep order, and are idempotent.
    #[test]
    fn filters_shrink_preserve_order_and_are_idempotent(
        anchors in anchors_strategy(),
        window in 1u32..200,
        band in 1u32..128,
    ) {
        for filtered in [
            filter_anchors(&anchors, window),
            band_filter(&anchors, band, window),
        ] {
            prop_assert!(filtered.len() <= anchors.len());
            // Subsequence check.
            let mut it = anchors.iter();
            for f in &filtered {
                prop_assert!(it.any(|a| a == f), "filter output not a subsequence");
            }
        }
        let once = filter_anchors(&anchors, window);
        let twice = filter_anchors(&once, window);
        prop_assert_eq!(once, twice);
        let bonce = band_filter(&anchors, band, window);
        let btwice = band_filter(&bonce, band, window);
        prop_assert_eq!(bonce, btwice);
    }

    /// After the fine diagonal filter, no two kept anchors on the same
    /// diagonal start within the window.
    #[test]
    fn diagonal_filter_spacing_invariant(anchors in anchors_strategy(), window in 1u32..100) {
        let kept = filter_anchors(&anchors, window);
        for (i, a) in kept.iter().enumerate() {
            for b in &kept[i + 1..] {
                if a.diagonal() == b.diagonal() {
                    let gap = b.anti_diagonal().abs_diff(a.anti_diagonal());
                    prop_assert!(
                        gap >= 2 * window as u64,
                        "anchors {a:?} and {b:?} too close on one diagonal"
                    );
                }
            }
        }
    }

    /// Band filter with zero parameters is the identity.
    #[test]
    fn zero_parameters_disable_filters(anchors in anchors_strategy()) {
        prop_assert_eq!(filter_anchors(&anchors, 0), anchors.clone());
        prop_assert_eq!(band_filter(&anchors, 0, 100), anchors.clone());
        prop_assert_eq!(band_filter(&anchors, 64, 0), anchors.clone());
    }

    /// Seed words are position-independent: equal windows yield equal
    /// words, differing care positions yield differing words.
    #[test]
    fn word_equality_iff_care_positions_match(t in seq_strategy(100)) {
        let shape = SeedShape::lastz_12of19();
        if t.len() < 2 * shape.span() {
            return Ok(());
        }
        let w0 = shape.word_at(&t, 0);
        for pos in 0..t.len() - shape.span() {
            let w = shape.word_at(&t, pos);
            let care_equal = shape
                .care_positions()
                .iter()
                .all(|&c| t[c] == t[pos + c]);
            prop_assert_eq!(w == w0, care_equal, "pos {}", pos);
        }
    }
}
