//! Property tests for the persistent sharded seed index: a
//! persisted-then-loaded index must agree with a freshly built one for
//! every probed word, across shapes, shard counts, and shard boundaries
//! straddling bucket edges — and damaged files must never load.

use fastz_genome::Sequence;
use fastz_seed::{find_anchors_in, PersistError, SeedIndex, SeedShape, ShardedSeedIndex};
use proptest::prelude::*;

fn seq_strategy(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, 40..max)
}

/// One of the two drilled shapes: contiguous exact seeds of varying k,
/// or the LASTZ 12-of-19 spaced seed.
fn shape_strategy() -> impl Strategy<Value = SeedShape> {
    (0usize..6).prop_map(|pick| {
        if pick == 5 {
            SeedShape::lastz_12of19()
        } else {
            SeedShape::exact(4 + pick)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Persist → load → lookup is bit-identical to a fresh in-memory
    /// build for EVERY word occurring in the target, at every shard
    /// count (including counts that slice buckets mid-run and shard
    /// counts exceeding the window count, which leaves empty shards).
    #[test]
    fn persisted_index_agrees_with_fresh_build(
        t in seq_strategy(600),
        shape in shape_strategy(),
        n_shards in 1usize..9,
    ) {
        let target = Sequence::from_codes("prop-target", t);
        let whole = SeedIndex::build(&target, shape.clone());
        let built = ShardedSeedIndex::build(&target, shape.clone(), n_shards).unwrap();
        let loaded = ShardedSeedIndex::from_bytes(&built.to_bytes()).unwrap();
        prop_assert_eq!(loaded.checksum(), built.checksum());
        prop_assert_eq!(loaded.fingerprint(), built.fingerprint());
        if target.len() >= shape.span() {
            for pos in 0..=target.len() - shape.span() {
                let Some(word) = shape.word_at(target.codes(), pos) else { continue };
                let fresh: Vec<u32> = whole.lookup(word).collect();
                let shard: Vec<u32> = built.lookup(word).collect();
                let disk: Vec<u32> = loaded.lookup(word).collect();
                prop_assert_eq!(&fresh, &shard, "in-memory sharded diverged at pos {}", pos);
                prop_assert_eq!(&fresh, &disk, "loaded sharded diverged at pos {}", pos);
            }
        }
    }

    /// Anchor enumeration through a loaded sharded index equals the
    /// in-memory path exactly (same anchors, same order) — the contract
    /// `Workload::build_with_index` relies on.
    #[test]
    fn anchors_via_loaded_index_match_in_memory(
        t in seq_strategy(500),
        q in seq_strategy(300),
        n_shards in 1usize..6,
    ) {
        let target = Sequence::from_codes("prop-target", t);
        let query = Sequence::from_codes("prop-query", q);
        let shape = SeedShape::exact(6);
        let whole = SeedIndex::build(&target, shape.clone());
        let built = ShardedSeedIndex::build(&target, shape.clone(), n_shards).unwrap();
        let loaded = ShardedSeedIndex::from_bytes(&built.to_bytes()).unwrap();
        let a = find_anchors_in(&whole, &query);
        let b = find_anchors_in(&loaded, &query);
        prop_assert_eq!(a, b);
    }

    /// Any strict prefix of an artifact is rejected as truncated — the
    /// checkpoint-trailer discipline applied to the binary format.
    #[test]
    fn truncated_artifacts_never_load(
        t in seq_strategy(300),
        n_shards in 1usize..5,
        frac in 0.0f64..1.0,
    ) {
        let target = Sequence::from_codes("prop-target", t);
        let bytes = ShardedSeedIndex::build(&target, SeedShape::exact(5), n_shards)
            .unwrap()
            .to_bytes();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        let err = ShardedSeedIndex::from_bytes(&bytes[..cut]).unwrap_err();
        prop_assert!(
            matches!(
                err,
                PersistError::Truncated { .. }
                    | PersistError::BadMagic
                    | PersistError::Malformed(_)
            ),
            "cut at {}/{}: {:?}", cut, bytes.len(), err
        );
    }

    /// A single flipped bit anywhere in the artifact is rejected
    /// (checksum, structural validation, or version gate — never a
    /// silent wrong load).
    #[test]
    fn bit_flips_never_load_silently(
        t in seq_strategy(300),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let target = Sequence::from_codes("prop-target", t);
        let idx = ShardedSeedIndex::build(&target, SeedShape::exact(5), 3).unwrap();
        let mut bytes = idx.to_bytes();
        let at = ((bytes.len() - 1) as f64 * byte_frac) as usize;
        bytes[at] ^= 1 << bit;
        // FNV-1a's per-byte update is invertible (odd multiplier, XOR),
        // so a single-byte change always changes the checksum: every
        // flip must be caught by some gate.
        let res = ShardedSeedIndex::from_bytes(&bytes);
        prop_assert!(
            res.is_err(),
            "flipped byte {} bit {} loaded silently: {:?}", at, bit, res.ok()
        );
    }
}
