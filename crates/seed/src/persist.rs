//! Persistent, sharded seed index: build once per `(genome, shape)`,
//! share across requests and devices.
//!
//! At service scale the per-run k-mer index rebuild is the tall pole of
//! stage 1 (ROADMAP item 4): every request against the same target genome
//! re-pays the full two-pass counting build. This module makes the index
//! a durable artifact instead:
//!
//! - **Sharding by target interval.** The target's window positions are
//!   split into `n_shards` contiguous intervals; each shard is an
//!   independent bucket table + flat entries array
//!   ([`SeedIndex::try_build_interval`]), so shards can be placed on
//!   different devices by the multi-GPU rebalancer and loaded/validated
//!   independently. Because every bucket stores positions in ascending
//!   order and shards partition the position space in order,
//!   concatenating shard lookups yields *exactly* the sequence the
//!   whole-target index yields — bit-identical anchors, drilled by the
//!   conformance `--index persist` mode.
//! - **Versioned, checksummed on-disk format.** A little-endian layout
//!   (magic, format version, genome id, shape pattern, target length,
//!   per-shard tables) sealed by an FNV-1a checksum over every preceding
//!   byte. Loads validate magic, version, structure, and checksum and
//!   reject corrupt / truncated / version-skewed files with structured
//!   errors, mirroring the checkpoint trailer discipline.
//! - **Crash-consistent save.** Same-directory temp file + fsync +
//!   atomic rename, exactly like `Checkpoint::save`: a crash leaves the
//!   old artifact or the new one, never a torn file.
//! - **Identity fingerprint.** [`ShardedSeedIndex::fingerprint`] digests
//!   the artifact (version + content checksum); the pipeline folds it
//!   into the checkpoint fingerprint so a resume can never silently
//!   cross index versions.

use crate::anchor::AnchorSource;
use crate::index::{IndexBuildError, SeedIndex};
use crate::shape::SeedShape;
use fastz_genome::Sequence;
use std::io::Write;
use std::path::{Path, PathBuf};

/// On-disk format magic (8 bytes).
pub const INDEX_MAGIC: &[u8; 8] = b"FZSIDX\0\0";

/// Current on-disk format version. Bump on any layout change; loads
/// reject other versions with [`PersistError::VersionSkew`].
pub const INDEX_FORMAT_VERSION: u32 = 1;

/// Structured failure from the persist layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// Underlying filesystem error (message includes the path).
    Io(String),
    /// The file does not start with [`INDEX_MAGIC`].
    BadMagic,
    /// The file's format version differs from this build's.
    VersionSkew {
        /// Version found in the file.
        found: u32,
        /// Version this build reads/writes.
        expected: u32,
    },
    /// The file ends before the declared content does.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The sealed checksum does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the content.
        computed: u64,
    },
    /// Structurally invalid content (message says what).
    Malformed(String),
    /// The underlying index build failed (over-limit target).
    Build(IndexBuildError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(m) => write!(f, "index io error: {m}"),
            PersistError::BadMagic => write!(f, "not a fastz seed index (bad magic)"),
            PersistError::VersionSkew { found, expected } => {
                write!(
                    f,
                    "index format version {found}, this build reads {expected}"
                )
            }
            PersistError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated index file: needed {needed} bytes, have {have}"
                )
            }
            PersistError::ChecksumMismatch { stored, computed } => write!(
                f,
                "index checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            PersistError::Malformed(m) => write!(f, "malformed index file: {m}"),
            PersistError::Build(e) => write!(f, "index build failed: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<IndexBuildError> for PersistError {
    fn from(e: IndexBuildError) -> Self {
        PersistError::Build(e)
    }
}

/// Where a [`ShardedSeedIndex`] came from — the cache/bench layers count
/// these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexOrigin {
    /// Validated and loaded from an existing artifact on disk.
    LoadedFromDisk,
    /// Built from the sequence (and saved, when a directory was given).
    Built,
}

/// FNV-1a over a byte stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A persistent, shard-by-target-interval seed index.
pub struct ShardedSeedIndex {
    shape: SeedShape,
    genome_id: String,
    target_len: usize,
    /// Window-position interval `[lo, hi)` each shard covers, in order.
    bounds: Vec<(u64, u64)>,
    shards: Vec<SeedIndex>,
    /// FNV-1a over the serialized content (everything before the
    /// trailer) — the artifact's identity.
    checksum: u64,
}

impl ShardedSeedIndex {
    /// Builds a sharded index over `target`, splitting its seed windows
    /// into `n_shards` contiguous intervals (clamped to at least 1).
    pub fn build(
        target: &Sequence,
        shape: SeedShape,
        n_shards: usize,
    ) -> Result<ShardedSeedIndex, IndexBuildError> {
        let n_shards = n_shards.max(1);
        let n_windows = target
            .codes()
            .len()
            .saturating_sub(shape.span().saturating_sub(1));
        let per = n_windows.div_ceil(n_shards).max(1);
        let mut bounds = Vec::with_capacity(n_shards);
        let mut shards = Vec::with_capacity(n_shards);
        for s in 0..n_shards {
            let lo = (s * per).min(n_windows);
            let hi = ((s + 1) * per).min(n_windows);
            bounds.push((lo as u64, hi as u64));
            shards.push(SeedIndex::try_build_interval(
                target,
                shape.clone(),
                lo,
                hi,
            )?);
        }
        let mut idx = ShardedSeedIndex {
            shape,
            genome_id: target.name().to_string(),
            target_len: target.len(),
            bounds,
            shards,
            checksum: 0,
        };
        idx.checksum = fnv1a(&idx.content_bytes());
        Ok(idx)
    }

    /// The seed shape.
    pub fn shape(&self) -> &SeedShape {
        &self.shape
    }

    /// The indexed genome's id (sequence name).
    pub fn genome_id(&self) -> &str {
        &self.genome_id
    }

    /// Length of the indexed target in bp.
    pub fn target_len(&self) -> usize {
        self.target_len
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Window-position interval `[lo, hi)` covered by shard `s`.
    pub fn shard_bounds(&self, s: usize) -> (u64, u64) {
        self.bounds[s]
    }

    /// Total indexed windows across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True if no windows were indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry count per shard — the rebalancer's load model input.
    pub fn shard_loads(&self) -> Vec<f64> {
        self.shards.iter().map(|s| s.len() as f64).collect()
    }

    /// Resident heap bytes across all shards.
    pub fn heap_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.heap_bytes()).sum()
    }

    /// The artifact's content checksum (FNV-1a over the serialized
    /// content, excluding the trailer itself).
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// A nonzero identity fingerprint for checkpoint binding: digests
    /// the format version and content checksum, so any rebuild against
    /// different content or a format bump changes it.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(20);
        bytes.extend_from_slice(INDEX_MAGIC);
        bytes.extend_from_slice(&INDEX_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&self.checksum.to_le_bytes());
        let fp = fnv1a(&bytes);
        if fp == 0 {
            1
        } else {
            fp
        }
    }

    /// All target positions whose seed word equals `word`, concatenated
    /// across shards in shard order. Because buckets store ascending
    /// positions and shards partition the position space in order, the
    /// result is ascending — the exact sequence the whole-target
    /// [`SeedIndex::lookup`] yields.
    pub fn lookup<'a>(&'a self, word: u64) -> impl Iterator<Item = u32> + 'a {
        self.shards.iter().flat_map(move |s| s.lookup(word))
    }

    // ---- serialization -------------------------------------------------

    /// Serializes the content (everything before the checksum trailer).
    fn content_bytes(&self) -> Vec<u8> {
        // Exhaustiveness witness: every field is either serialized here
        // (and thereby covered by the checksum the fingerprint digests)
        // or explicitly waived — adding a field without deciding its
        // identity fate fails the build.
        // fastz-lint: fingerprint(ShardedSeedIndex)
        let ShardedSeedIndex {
            shape,
            genome_id,
            target_len,
            bounds,
            shards,
            checksum: _, // not fingerprinted: the checksum seals these bytes — folding it into itself would be circular
        } = self;
        let mut out = Vec::with_capacity(64 + self.len() * 12);
        out.extend_from_slice(INDEX_MAGIC);
        out.extend_from_slice(&INDEX_FORMAT_VERSION.to_le_bytes());
        let id = genome_id.as_bytes();
        out.extend_from_slice(&(id.len() as u32).to_le_bytes());
        out.extend_from_slice(id);
        let pat = shape.pattern_string();
        out.extend_from_slice(&(pat.len() as u32).to_le_bytes());
        out.extend_from_slice(pat.as_bytes());
        out.extend_from_slice(&(*target_len as u64).to_le_bytes());
        out.extend_from_slice(&(shards.len() as u32).to_le_bytes());
        for (s, shard) in shards.iter().enumerate() {
            let (lo, hi) = bounds[s];
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
            out.extend_from_slice(&shard.shift().to_le_bytes());
            let starts = shard.bucket_starts();
            out.extend_from_slice(&(starts.len() as u64).to_le_bytes());
            for &v in starts {
                out.extend_from_slice(&v.to_le_bytes());
            }
            let entries = shard.entries();
            out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
            for &(word, pos) in entries {
                out.extend_from_slice(&word.to_le_bytes());
                out.extend_from_slice(&pos.to_le_bytes());
            }
        }
        out
    }

    /// Serializes the whole artifact (content + checksum trailer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = self.content_bytes();
        out.extend_from_slice(&self.checksum.to_le_bytes());
        out
    }

    /// Deserializes and fully validates an artifact: magic, version,
    /// structure, and the sealed checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<ShardedSeedIndex, PersistError> {
        let mut r = Reader { bytes, at: 0 };
        let magic = r.take(8)?;
        if magic != INDEX_MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = r.u32()?;
        if version != INDEX_FORMAT_VERSION {
            return Err(PersistError::VersionSkew {
                found: version,
                expected: INDEX_FORMAT_VERSION,
            });
        }
        let id_len = r.u32()? as usize;
        let genome_id = String::from_utf8(r.take(id_len)?.to_vec())
            .map_err(|_| PersistError::Malformed("genome id is not UTF-8".into()))?;
        let pat_len = r.u32()? as usize;
        let pattern = String::from_utf8(r.take(pat_len)?.to_vec())
            .map_err(|_| PersistError::Malformed("shape pattern is not UTF-8".into()))?;
        let shape = parse_pattern(&pattern)?;
        let target_len = r.u64()? as usize;
        let n_shards = r.u32()? as usize;
        if n_shards == 0 || n_shards > 1 << 20 {
            return Err(PersistError::Malformed(format!(
                "implausible shard count {n_shards}"
            )));
        }
        let mut bounds = Vec::with_capacity(n_shards);
        let mut shards = Vec::with_capacity(n_shards);
        for s in 0..n_shards {
            let lo = r.u64()?;
            let hi = r.u64()?;
            if lo > hi || hi > target_len as u64 {
                return Err(PersistError::Malformed(format!(
                    "shard {s} bounds [{lo}, {hi}) exceed target of {target_len} bp"
                )));
            }
            let shift = r.u32()?;
            let n_starts = r.u64()? as usize;
            if n_starts < 2 || !(n_starts - 1).is_power_of_two() {
                return Err(PersistError::Malformed(format!(
                    "shard {s} bucket table of {n_starts} slots is not 2^k+1"
                )));
            }
            if shift != 64 - (n_starts - 1).trailing_zeros() {
                return Err(PersistError::Malformed(format!(
                    "shard {s} hash shift {shift} disagrees with its table size"
                )));
            }
            let mut starts = Vec::with_capacity(n_starts);
            for _ in 0..n_starts {
                starts.push(r.u32()?);
            }
            let n_entries = r.u64()? as usize;
            if starts[0] != 0
                || starts[n_starts - 1] as usize != n_entries
                || starts.windows(2).any(|w| w[0] > w[1])
            {
                return Err(PersistError::Malformed(format!(
                    "shard {s} bucket starts are not a monotone prefix over {n_entries} entries"
                )));
            }
            let mut entries = Vec::with_capacity(n_entries);
            for _ in 0..n_entries {
                let word = r.u64()?;
                let pos = r.u32()?;
                if (pos as u64) < lo || (pos as u64) >= hi {
                    return Err(PersistError::Malformed(format!(
                        "shard {s} entry position {pos} outside its [{lo}, {hi}) interval"
                    )));
                }
                entries.push((word, pos));
            }
            bounds.push((lo, hi));
            shards.push(SeedIndex::from_parts(
                shape.clone(),
                shift,
                starts,
                entries,
                target_len,
            ));
        }
        let content_len = r.at;
        let stored = r.u64()?;
        if r.at != bytes.len() {
            return Err(PersistError::Malformed(format!(
                "{} trailing bytes after the checksum",
                bytes.len() - r.at
            )));
        }
        let computed = fnv1a(&bytes[..content_len]);
        if stored != computed {
            return Err(PersistError::ChecksumMismatch { stored, computed });
        }
        Ok(ShardedSeedIndex {
            shape,
            genome_id,
            target_len,
            bounds,
            shards,
            checksum: stored,
        })
    }

    /// Writes the artifact crash-consistently: same-directory temp file,
    /// fsync, atomic rename — a crash leaves the old artifact or the new
    /// one, never a torn file (the `Checkpoint::save` discipline).
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        let err = |e: std::io::Error| PersistError::Io(format!("{}: {e}", path.display()));
        let mut name = path
            .file_name()
            .ok_or_else(|| PersistError::Io(format!("{}: no file name", path.display())))?
            .to_os_string();
        name.push(".tmp");
        let tmp = path.with_file_name(name);
        {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp).map_err(err)?);
            f.write_all(&self.to_bytes()).map_err(err)?;
            f.flush().map_err(err)?;
            f.get_ref().sync_all().map_err(err)?;
        }
        std::fs::rename(&tmp, path).map_err(err)
    }

    /// Loads and validates an artifact; `Ok(None)` when the file does
    /// not exist.
    pub fn load(path: &Path) -> Result<Option<ShardedSeedIndex>, PersistError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(PersistError::Io(format!("{}: {e}", path.display()))),
        };
        ShardedSeedIndex::from_bytes(&bytes).map(Some)
    }

    /// The artifact file name for `(genome id, shape, shard count)` —
    /// the cache key rendered as a filesystem-safe name.
    pub fn artifact_name(genome_id: &str, shape: &SeedShape, n_shards: usize) -> String {
        let pat = shape.pattern_string();
        let key = format!("{genome_id}\u{1f}{pat}\u{1f}{n_shards}");
        format!(
            "idx-{:016x}-{}of{}-s{}.fzsidx",
            fnv1a(key.as_bytes()),
            shape.weight(),
            shape.span(),
            n_shards.max(1),
        )
    }

    /// The warm path: load a matching artifact from `dir` if one exists
    /// and validates, otherwise build from `target` and save it. Returns
    /// the index and where it came from. A stale artifact (same name,
    /// different genome id / shape / target length) is rebuilt and
    /// replaced; a corrupt or version-skewed one is an error so callers
    /// surface it rather than silently rebuilding over evidence.
    pub fn load_or_build(
        dir: &Path,
        target: &Sequence,
        shape: SeedShape,
        n_shards: usize,
    ) -> Result<(ShardedSeedIndex, IndexOrigin), PersistError> {
        let n_shards = n_shards.max(1);
        let path = dir.join(ShardedSeedIndex::artifact_name(
            target.name(),
            &shape,
            n_shards,
        ));
        match ShardedSeedIndex::load(&path)? {
            Some(idx)
                if idx.genome_id == target.name()
                    && idx.shape == shape
                    && idx.target_len == target.len()
                    && idx.n_shards() == n_shards =>
            {
                return Ok((idx, IndexOrigin::LoadedFromDisk));
            }
            _ => {}
        }
        std::fs::create_dir_all(dir)
            .map_err(|e| PersistError::Io(format!("{}: {e}", dir.display())))?;
        let idx = ShardedSeedIndex::build(target, shape, n_shards)?;
        idx.save(&path)?;
        Ok((idx, IndexOrigin::Built))
    }

    /// The artifact path `load_or_build` uses under `dir` for `target`.
    pub fn artifact_path(
        dir: &Path,
        target: &Sequence,
        shape: &SeedShape,
        n_shards: usize,
    ) -> PathBuf {
        dir.join(ShardedSeedIndex::artifact_name(
            target.name(),
            shape,
            n_shards.max(1),
        ))
    }
}

impl std::fmt::Debug for ShardedSeedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSeedIndex")
            .field("genome_id", &self.genome_id)
            .field("pattern", &self.shape.pattern_string())
            .field("target_len", &self.target_len)
            .field("n_shards", &self.shards.len())
            .field("entries", &self.len())
            .field("checksum", &format_args!("{:016x}", self.checksum))
            .finish()
    }
}

impl AnchorSource for ShardedSeedIndex {
    fn source_shape(&self) -> &SeedShape {
        &self.shape
    }

    fn positions_into(&self, word: u64, out: &mut Vec<u32>) {
        out.extend(self.lookup(word));
    }
}

/// Validates a pattern string from an untrusted file (the panicking
/// [`SeedShape::from_pattern`] is for trusted literals).
fn parse_pattern(pattern: &str) -> Result<SeedShape, PersistError> {
    let bad = |m: String| PersistError::Malformed(m);
    if pattern.is_empty() {
        return Err(bad("empty shape pattern".into()));
    }
    if !pattern.chars().all(|c| c == '0' || c == '1') {
        return Err(bad(format!(
            "shape pattern {pattern:?} has non-binary characters"
        )));
    }
    if !pattern.starts_with('1') || !pattern.ends_with('1') {
        return Err(bad(format!("shape pattern {pattern:?} has wildcard ends")));
    }
    let weight = pattern.chars().filter(|&c| c == '1').count();
    if weight > 31 {
        return Err(bad(format!(
            "shape pattern has {weight} care positions (max 31)"
        )));
    }
    Ok(SeedShape::from_pattern(pattern))
}

/// Little-endian bounds-checked reader over a byte slice.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.bytes.len() - self.at < n {
            return Err(PersistError::Truncated {
                needed: n,
                have: self.bytes.len() - self.at,
            });
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::SeedIndex;
    use fastz_genome::evolve::random_sequence;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("fastz-seed-persist-{tag}"));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn sharded_lookup_matches_whole_index_bit_for_bit() {
        let t = random_sequence("genome-a", 6_000, 0.5, 11);
        let shape = SeedShape::lastz_12of19();
        let whole = SeedIndex::build(&t, shape.clone());
        for n_shards in [1usize, 2, 3, 7, 16] {
            let sharded = ShardedSeedIndex::build(&t, shape.clone(), n_shards).unwrap();
            assert_eq!(sharded.n_shards(), n_shards);
            assert_eq!(sharded.len(), whole.len());
            for probe in (0..t.len() - shape.span() + 1).step_by(13) {
                let Some(word) = shape.word_at(t.codes(), probe) else {
                    continue;
                };
                // Exact sequence equality, not just set equality: the
                // anchor enumeration consumes positions in this order.
                let a: Vec<u32> = whole.lookup(word).collect();
                let b: Vec<u32> = sharded.lookup(word).collect();
                assert_eq!(a, b, "{n_shards} shards, probe {probe}");
            }
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = random_sequence("genome-b", 3_000, 0.5, 23);
        let idx = ShardedSeedIndex::build(&t, SeedShape::exact(10), 4).unwrap();
        let re = ShardedSeedIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert_eq!(re.genome_id(), "genome-b");
        assert_eq!(re.target_len(), t.len());
        assert_eq!(re.n_shards(), 4);
        assert_eq!(re.checksum(), idx.checksum());
        assert_eq!(re.fingerprint(), idx.fingerprint());
        assert_eq!(re.len(), idx.len());
        for probe in 0..50 {
            let Some(word) = idx.shape().word_at(t.codes(), probe) else {
                continue;
            };
            let a: Vec<u32> = idx.lookup(word).collect();
            let b: Vec<u32> = re.lookup(word).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn corrupt_truncated_and_skewed_files_are_rejected() {
        let t = random_sequence("genome-c", 1_200, 0.5, 31);
        let idx = ShardedSeedIndex::build(&t, SeedShape::exact(8), 2).unwrap();
        let bytes = idx.to_bytes();

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(
            ShardedSeedIndex::from_bytes(&bad).unwrap_err(),
            PersistError::BadMagic
        );

        // Version skew.
        let mut skew = bytes.clone();
        skew[8..12].copy_from_slice(&(INDEX_FORMAT_VERSION + 1).to_le_bytes());
        assert_eq!(
            ShardedSeedIndex::from_bytes(&skew).unwrap_err(),
            PersistError::VersionSkew {
                found: INDEX_FORMAT_VERSION + 1,
                expected: INDEX_FORMAT_VERSION
            }
        );

        // Truncation at every suffix boundary class: drop the trailer,
        // drop into the entries, drop into the header.
        for cut in [8, bytes.len() / 2, bytes.len() - 3] {
            let err = ShardedSeedIndex::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, PersistError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }

        // A flipped content byte must trip the checksum (or a structural
        // check, whichever sees it first).
        let mut flipped = bytes.clone();
        let mid = bytes.len() / 2;
        flipped[mid] ^= 0x01;
        assert!(ShardedSeedIndex::from_bytes(&flipped).is_err());

        // A flipped trailer byte is always a checksum mismatch.
        let mut trailer = bytes.clone();
        let last = bytes.len() - 1;
        trailer[last] ^= 0x01;
        assert!(matches!(
            ShardedSeedIndex::from_bytes(&trailer).unwrap_err(),
            PersistError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn save_is_atomic_and_load_or_build_goes_warm() {
        let dir = tmpdir("warm");
        let t = random_sequence("genome-d", 2_000, 0.5, 47);
        let shape = SeedShape::lastz_12of19();
        let (built, o1) = ShardedSeedIndex::load_or_build(&dir, &t, shape.clone(), 3).unwrap();
        assert_eq!(o1, IndexOrigin::Built);
        let path = ShardedSeedIndex::artifact_path(&dir, &t, &shape, 3);
        assert!(path.exists());
        assert!(!path.with_extension("fzsidx.tmp").exists());
        let (loaded, o2) = ShardedSeedIndex::load_or_build(&dir, &t, shape.clone(), 3).unwrap();
        assert_eq!(o2, IndexOrigin::LoadedFromDisk);
        assert_eq!(loaded.checksum(), built.checksum());
        // Different shard count → different artifact → cold build.
        let (_, o3) = ShardedSeedIndex::load_or_build(&dir, &t, shape.clone(), 5).unwrap();
        assert_eq!(o3, IndexOrigin::Built);
        // A corrupt file under the real name is surfaced, not silently
        // rebuilt.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(ShardedSeedIndex::load_or_build(&dir, &t, shape, 3).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_tracks_content_and_is_nonzero() {
        let t1 = random_sequence("genome-e", 1_000, 0.5, 3);
        let t2 = random_sequence("genome-e", 1_000, 0.5, 4);
        let a = ShardedSeedIndex::build(&t1, SeedShape::exact(8), 2).unwrap();
        let b = ShardedSeedIndex::build(&t2, SeedShape::exact(8), 2).unwrap();
        let c = ShardedSeedIndex::build(&t1, SeedShape::exact(8), 3).unwrap();
        assert_ne!(a.fingerprint(), 0);
        assert_ne!(a.fingerprint(), b.fingerprint(), "content changes identity");
        assert_ne!(
            a.fingerprint(),
            c.fingerprint(),
            "sharding changes identity"
        );
        let again = ShardedSeedIndex::build(&t1, SeedShape::exact(8), 2).unwrap();
        assert_eq!(a.fingerprint(), again.fingerprint(), "deterministic");
    }
}
