//! # fastz-seed
//!
//! Stages 1-2 of the whole-genome-alignment pipeline: exact-match seeding
//! with contiguous or spaced seed shapes (LASTZ's 12-of-19 by default), a
//! bucketed seed index, anchor enumeration, and LASTZ-style diagonal
//! filtering plus deterministic subsampling to a seed budget.

#![warn(missing_docs)]

pub mod anchor;
pub mod index;
pub mod mask;
pub mod shape;
pub mod workload;

pub use anchor::{band_filter, filter_anchors, find_anchors, sample_anchors, Anchor};
pub use index::SeedIndex;
pub use mask::{find_anchors_masked, WordMask};
pub use shape::SeedShape;
pub use workload::{Workload, WorkloadParams};
