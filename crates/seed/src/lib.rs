//! # fastz-seed
//!
//! Stages 1-2 of the whole-genome-alignment pipeline: exact-match seeding
//! with contiguous or spaced seed shapes (LASTZ's 12-of-19 by default), a
//! bucketed seed index, anchor enumeration, and LASTZ-style diagonal
//! filtering plus deterministic subsampling to a seed budget.

#![warn(missing_docs)]

pub mod anchor;
pub mod index;
pub mod mask;
pub mod persist;
pub mod shape;
pub mod workload;

pub use anchor::{
    band_filter, filter_anchors, find_anchors, find_anchors_in, sample_anchors, Anchor,
    AnchorSource,
};
pub use index::{
    build_peak_bytes, check_target_len, legacy_build_peak_bytes, IndexBuildError, SeedIndex,
    MAX_TARGET_LEN,
};
pub use mask::{find_anchors_masked, WordMask};
pub use persist::{IndexOrigin, PersistError, ShardedSeedIndex, INDEX_FORMAT_VERSION};
pub use shape::SeedShape;
pub use workload::{Workload, WorkloadParams};
