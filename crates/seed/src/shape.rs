//! Seed shapes: contiguous k-mers and spaced seeds.
//!
//! A *seed shape* is a binary pattern over a window ("span") of positions;
//! positions marked `1` ("care" positions) must match exactly, positions
//! marked `0` are wildcards. LASTZ's default shape is the 12-of-19 spaced
//! seed `1110100110010101111`; FastZ inherits it.

use fastz_genome::N_CODE;

/// A seed shape (pattern of care positions over a span).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeedShape {
    /// Offsets within the span that must match (sorted, distinct).
    care: Vec<usize>,
    /// Total window length.
    span: usize,
}

impl SeedShape {
    /// A contiguous exact-match seed of length `k` (2 ≤ k ≤ 31).
    pub fn exact(k: usize) -> SeedShape {
        assert!((2..=31).contains(&k), "k must be in 2..=31");
        SeedShape {
            care: (0..k).collect(),
            span: k,
        }
    }

    /// LASTZ's default 12-of-19 spaced seed (`1110100110010101111`).
    pub fn lastz_12of19() -> SeedShape {
        SeedShape::from_pattern("1110100110010101111")
    }

    /// Parses a pattern string of `1` (care) and `0` (wildcard) characters.
    ///
    /// # Panics
    /// Panics on any other character, an empty pattern, a pattern with more
    /// than 31 care positions, or a pattern that does not start and end
    /// with `1` (leading/trailing wildcards would just shift the seed).
    pub fn from_pattern(pattern: &str) -> SeedShape {
        assert!(!pattern.is_empty(), "empty seed pattern");
        let bits: Vec<bool> = pattern
            .chars()
            .map(|c| match c {
                '1' => true,
                '0' => false,
                other => panic!("invalid seed pattern character {other:?}"),
            })
            .collect();
        assert!(
            bits[0] && bits[bits.len() - 1],
            "seed pattern must start and end with 1"
        );
        let care: Vec<usize> = bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        assert!(care.len() <= 31, "more than 31 care positions");
        SeedShape {
            span: bits.len(),
            care,
        }
    }

    /// Window length of the shape.
    #[inline]
    pub fn span(&self) -> usize {
        self.span
    }

    /// Number of care positions (the seed weight).
    #[inline]
    pub fn weight(&self) -> usize {
        self.care.len()
    }

    /// The care-position offsets.
    pub fn care_positions(&self) -> &[usize] {
        &self.care
    }

    /// Renders the pattern string (e.g. `"1101"`).
    pub fn pattern_string(&self) -> String {
        let mut s = vec!['0'; self.span];
        for &p in &self.care {
            s[p] = '1';
        }
        s.into_iter().collect()
    }

    /// Extracts the packed seed word at `pos` in `codes`, or `None` if the
    /// window extends past the end or covers an `N` at a care position.
    ///
    /// The word packs the care-position base codes 2 bits each, first care
    /// position in the lowest bits.
    #[inline]
    pub fn word_at(&self, codes: &[u8], pos: usize) -> Option<u64> {
        if pos + self.span > codes.len() {
            return None;
        }
        let mut word = 0u64;
        for (k, &off) in self.care.iter().enumerate() {
            let c = codes[pos + off];
            if c >= N_CODE {
                return None;
            }
            word |= (c as u64) << (2 * k);
        }
        Some(word)
    }

    /// True if the windows at `a_pos` in `a` and `b_pos` in `b` match at
    /// every care position (the definition `word_at` equality implements).
    pub fn matches(&self, a: &[u8], a_pos: usize, b: &[u8], b_pos: usize) -> bool {
        match (self.word_at(a, a_pos), self.word_at(b, b_pos)) {
            (Some(wa), Some(wb)) => wa == wb,
            _ => false,
        }
    }

    /// Number of distinct seed words (`4^weight`).
    pub fn word_space(&self) -> u64 {
        1u64 << (2 * self.weight())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastz_genome::Sequence;

    fn codes(s: &[u8]) -> Vec<u8> {
        Sequence::from_ascii("t", s).unwrap().codes().to_vec()
    }

    #[test]
    fn exact_shape_basics() {
        let s = SeedShape::exact(19);
        assert_eq!(s.span(), 19);
        assert_eq!(s.weight(), 19);
        assert_eq!(s.care_positions()[0], 0);
        assert_eq!(s.care_positions()[18], 18);
    }

    #[test]
    fn lastz_shape_is_12_of_19() {
        let s = SeedShape::lastz_12of19();
        assert_eq!(s.span(), 19);
        assert_eq!(s.weight(), 12);
        assert_eq!(s.pattern_string(), "1110100110010101111");
    }

    #[test]
    fn pattern_round_trip() {
        for p in ["1", "11", "101", "1110100110010101111"] {
            assert_eq!(SeedShape::from_pattern(p).pattern_string(), p);
        }
    }

    #[test]
    #[should_panic]
    fn pattern_with_leading_wildcard_rejected() {
        SeedShape::from_pattern("0101");
    }

    #[test]
    #[should_panic]
    fn pattern_with_bad_char_rejected() {
        SeedShape::from_pattern("1012");
    }

    #[test]
    fn word_at_exact() {
        let s = SeedShape::exact(4);
        let c = codes(b"ACGTA");
        // A=0,C=1,G=2,T=3 → word = 0 | 1<<2 | 2<<4 | 3<<6
        assert_eq!(s.word_at(&c, 0), Some(0b11_10_01_00));
        assert_eq!(s.word_at(&c, 1), Some(0b00_11_10_01));
        assert_eq!(s.word_at(&c, 2), None); // window overruns
    }

    #[test]
    fn word_at_skips_n() {
        let s = SeedShape::exact(4);
        let c = codes(b"ACNTA");
        assert_eq!(s.word_at(&c, 0), None);
        // Spaced shape with a wildcard over the N is fine.
        let sp = SeedShape::from_pattern("1101");
        assert!(sp.word_at(&c, 0).is_some());
    }

    #[test]
    fn spaced_word_ignores_wildcards() {
        let sp = SeedShape::from_pattern("101");
        let a = codes(b"ACG");
        let b = codes(b"ATG");
        assert_eq!(sp.word_at(&a, 0), sp.word_at(&b, 0));
        assert!(sp.matches(&a, 0, &b, 0));
        let c = codes(b"TCG");
        assert!(!sp.matches(&a, 0, &c, 0));
    }

    #[test]
    fn word_space_counts() {
        assert_eq!(SeedShape::exact(2).word_space(), 16);
        assert_eq!(SeedShape::lastz_12of19().word_space(), 1 << 24);
    }
}
