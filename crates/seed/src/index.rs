//! The seed index: seed word → target positions.
//!
//! Stage 1 of the WGA pipeline (paper §2): a lightweight exact-match search
//! over seed words. The index is a bucketed table keyed by the packed seed
//! word, built with a two-pass counting layout into one flat position
//! array (no per-bucket `Vec` allocations), hashed with a multiply-shift
//! hash into a power-of-two bucket table.

use crate::shape::SeedShape;
use fastz_genome::Sequence;

/// Fibonacci multiply-shift hash, adequate for packed seed words.
#[inline(always)]
fn hash_word(word: u64, shift: u32) -> usize {
    (word.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize
}

/// An index over one target sequence for one seed shape.
pub struct SeedIndex {
    shape: SeedShape,
    shift: u32,
    /// `bucket_starts[h] .. bucket_starts[h+1]` delimits bucket `h` within
    /// `entries`.
    bucket_starts: Vec<u32>,
    /// Flat `(word, target_pos)` entries grouped by bucket.
    entries: Vec<(u64, u32)>,
    target_len: usize,
}

impl SeedIndex {
    /// Builds an index for `target` with `shape`.
    pub fn build(target: &Sequence, shape: SeedShape) -> SeedIndex {
        let codes = target.codes();
        let n_buckets = (codes.len().max(16))
            .checked_next_power_of_two()
            .expect("sequence too large");
        let shift = 64 - n_buckets.trailing_zeros();

        // Pass 1: count bucket sizes.
        let mut counts = vec![0u32; n_buckets + 1];
        let n_windows = codes.len().saturating_sub(shape.span().saturating_sub(1));
        let mut words: Vec<(u64, u32)> = Vec::with_capacity(n_windows);
        for pos in 0..n_windows {
            if let Some(word) = shape.word_at(codes, pos) {
                words.push((word, pos as u32));
                counts[hash_word(word, shift) + 1] += 1;
            }
        }

        // Prefix sums → bucket starts.
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let bucket_starts = counts.clone();

        // Pass 2: scatter entries into their buckets.
        let mut cursor = bucket_starts.clone();
        let mut entries = vec![(0u64, 0u32); words.len()];
        for &(word, pos) in &words {
            let h = hash_word(word, shift);
            entries[cursor[h] as usize] = (word, pos);
            cursor[h] += 1;
        }

        SeedIndex {
            shape,
            shift,
            bucket_starts,
            entries,
            target_len: target.len(),
        }
    }

    /// The seed shape this index was built with.
    pub fn shape(&self) -> &SeedShape {
        &self.shape
    }

    /// Length of the indexed target.
    pub fn target_len(&self) -> usize {
        self.target_len
    }

    /// Number of indexed windows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no windows were indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All target positions whose seed word equals `word`.
    #[inline]
    pub fn lookup(&self, word: u64) -> impl Iterator<Item = u32> + '_ {
        let h = hash_word(word, self.shift);
        let lo = self.bucket_starts[h] as usize;
        let hi = self.bucket_starts[h + 1] as usize;
        self.entries[lo..hi]
            .iter()
            .filter(move |&&(w, _)| w == word)
            .map(|&(_, pos)| pos)
    }

    /// Mean bucket occupancy among non-empty buckets (diagnostic).
    pub fn mean_bucket_occupancy(&self) -> f64 {
        let mut nonempty = 0usize;
        for h in 0..self.bucket_starts.len() - 1 {
            if self.bucket_starts[h + 1] > self.bucket_starts[h] {
                nonempty += 1;
            }
        }
        if nonempty == 0 {
            0.0
        } else {
            self.entries.len() as f64 / nonempty as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastz_genome::evolve::random_sequence;

    fn seq(ascii: &[u8]) -> Sequence {
        Sequence::from_ascii("t", ascii).unwrap()
    }

    #[test]
    fn index_finds_all_occurrences() {
        let s = seq(b"ACGTACGTACGT");
        let idx = SeedIndex::build(&s, SeedShape::exact(4));
        let word = idx.shape().word_at(s.codes(), 0).unwrap();
        let mut hits: Vec<u32> = idx.lookup(word).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 4, 8]);
    }

    #[test]
    fn index_lookup_misses() {
        let s = seq(b"AAAAAAAA");
        let idx = SeedIndex::build(&s, SeedShape::exact(4));
        // Word for "TTTT" does not occur.
        let probe = seq(b"TTTT");
        let word = idx.shape().word_at(probe.codes(), 0).unwrap();
        assert_eq!(idx.lookup(word).count(), 0);
    }

    #[test]
    fn n_windows_are_excluded() {
        let s = seq(b"ACGTNACGT");
        let idx = SeedIndex::build(&s, SeedShape::exact(4));
        // Windows at 1..=4 all cover the N; only 0 and 5 index.
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn empty_and_short_sequences() {
        let s = seq(b"AC");
        let idx = SeedIndex::build(&s, SeedShape::exact(4));
        assert!(idx.is_empty());
        let e = Sequence::from_codes("e", vec![]);
        assert!(SeedIndex::build(&e, SeedShape::exact(4)).is_empty());
    }

    #[test]
    fn exhaustive_agreement_with_naive_scan() {
        let t = random_sequence("t", 4_000, 0.5, 99);
        let shape = SeedShape::lastz_12of19();
        let idx = SeedIndex::build(&t, shape.clone());
        // Probe 200 windows of the same sequence: index hits must equal a
        // naive all-positions scan.
        for probe in (0..2_000).step_by(10) {
            let Some(word) = shape.word_at(t.codes(), probe) else {
                continue;
            };
            let mut from_index: Vec<u32> = idx.lookup(word).collect();
            from_index.sort_unstable();
            let naive: Vec<u32> = (0..t.len() - shape.span() + 1)
                .filter(|&p| shape.word_at(t.codes(), p) == Some(word))
                .map(|p| p as u32)
                .collect();
            assert_eq!(from_index, naive, "probe {probe}");
        }
    }

    #[test]
    fn occupancy_is_reported() {
        let t = random_sequence("t", 10_000, 0.5, 3);
        let idx = SeedIndex::build(&t, SeedShape::exact(12));
        let occ = idx.mean_bucket_occupancy();
        assert!((1.0..4.0).contains(&occ), "occupancy {occ}");
    }
}
