//! The seed index: seed word → target positions.
//!
//! Stage 1 of the WGA pipeline (paper §2): a lightweight exact-match search
//! over seed words. The index is a bucketed table keyed by the packed seed
//! word, built with a two-pass counting layout into one flat position
//! array (no per-bucket `Vec` allocations), hashed with a multiply-shift
//! hash into a power-of-two bucket table.
//!
//! The build is memory-frugal: pass 1 counts bucket sizes, pass 2
//! re-derives each window's word and scatters it directly into the final
//! entries array, so peak transient memory is exactly one bucket table
//! plus one entries array — no `(word, pos)` staging buffer and no extra
//! table copies (see [`build_peak_bytes`] vs [`legacy_build_peak_bytes`]).

use crate::shape::SeedShape;
use fastz_genome::Sequence;

/// Largest indexable target length: positions are stored as `u32`, so a
/// target longer than this would silently truncate positions past 4 Gbp.
pub const MAX_TARGET_LEN: usize = u32::MAX as usize;

/// Structured failure from [`SeedIndex::try_build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IndexBuildError {
    /// The target exceeds the `u32` position space ([`MAX_TARGET_LEN`]);
    /// building would wrap positions past 4 Gbp.
    TargetTooLarge {
        /// Offending target length in bp.
        len: usize,
        /// The largest supported length.
        max: usize,
    },
    /// The bucket table size overflowed `usize` (unreachable on 64-bit
    /// hosts once the length check passes, kept for 32-bit safety).
    BucketTableOverflow {
        /// Offending target length in bp.
        len: usize,
    },
}

impl std::fmt::Display for IndexBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexBuildError::TargetTooLarge { len, max } => write!(
                f,
                "target of {len} bp exceeds the {max} bp u32 position space"
            ),
            IndexBuildError::BucketTableOverflow { len } => {
                write!(f, "bucket table for {len} bp target overflows usize")
            }
        }
    }
}

impl std::error::Error for IndexBuildError {}

/// Rejects targets whose positions would not fit the `u32` entry layout.
///
/// Exposed so harnesses can regression-test the 4 Gbp boundary without
/// allocating a 4 GiB sequence.
pub fn check_target_len(len: usize) -> Result<(), IndexBuildError> {
    if len > MAX_TARGET_LEN {
        return Err(IndexBuildError::TargetTooLarge {
            len,
            max: MAX_TARGET_LEN,
        });
    }
    Ok(())
}

/// Fibonacci multiply-shift hash, adequate for packed seed words.
#[inline(always)]
fn hash_word(word: u64, shift: u32) -> usize {
    (word.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize
}

/// Peak transient heap bytes of the current single-table build: one
/// `u32` bucket table plus the final entries array.
pub fn build_peak_bytes(n_entries: usize, n_buckets: usize) -> usize {
    (n_buckets + 1) * std::mem::size_of::<u32>() + n_entries * std::mem::size_of::<(u64, u32)>()
}

/// Peak transient heap bytes of the pre-fix build for the same inputs:
/// a full `(word, pos)` staging buffer sized to every window alongside
/// the entries array, plus three full-size `u32` tables
/// (`counts` → `bucket_starts` → `cursor`).
pub fn legacy_build_peak_bytes(n_windows: usize, n_entries: usize, n_buckets: usize) -> usize {
    3 * (n_buckets + 1) * std::mem::size_of::<u32>()
        + (n_windows + n_entries) * std::mem::size_of::<(u64, u32)>()
}

/// An index over one target sequence for one seed shape.
pub struct SeedIndex {
    shape: SeedShape,
    shift: u32,
    /// `bucket_starts[h] .. bucket_starts[h+1]` delimits bucket `h` within
    /// `entries`.
    bucket_starts: Vec<u32>,
    /// Flat `(word, target_pos)` entries grouped by bucket.
    entries: Vec<(u64, u32)>,
    target_len: usize,
}

impl SeedIndex {
    /// Builds an index for `target` with `shape`.
    ///
    /// # Panics
    /// Panics if the target exceeds [`MAX_TARGET_LEN`]; use
    /// [`SeedIndex::try_build`] to handle over-limit targets structurally.
    pub fn build(target: &Sequence, shape: SeedShape) -> SeedIndex {
        match SeedIndex::try_build(target, shape) {
            Ok(idx) => idx,
            Err(e) => panic!("seed index build failed: {e}"),
        }
    }

    /// Builds an index for `target` with `shape`, rejecting targets whose
    /// positions would overflow the `u32` entry layout.
    pub fn try_build(target: &Sequence, shape: SeedShape) -> Result<SeedIndex, IndexBuildError> {
        let codes = target.codes();
        let n_windows = codes.len().saturating_sub(shape.span().saturating_sub(1));
        SeedIndex::try_build_interval_sized(target, shape, 0, n_windows, codes.len())
    }

    /// Builds an index covering only windows `lo..hi` (window positions,
    /// `hi` clamped to the window count) — the shard primitive used by
    /// [`crate::persist::ShardedSeedIndex`]. The bucket table is sized to
    /// the interval, so `k` shards use roughly the same total table space
    /// as one whole-target index.
    pub fn try_build_interval(
        target: &Sequence,
        shape: SeedShape,
        lo: usize,
        hi: usize,
    ) -> Result<SeedIndex, IndexBuildError> {
        let hint = hi.saturating_sub(lo);
        SeedIndex::try_build_interval_sized(target, shape, lo, hi, hint)
    }

    fn try_build_interval_sized(
        target: &Sequence,
        shape: SeedShape,
        lo: usize,
        hi: usize,
        bucket_hint: usize,
    ) -> Result<SeedIndex, IndexBuildError> {
        let codes = target.codes();
        check_target_len(codes.len())?;
        let n_windows = codes.len().saturating_sub(shape.span().saturating_sub(1));
        let lo = lo.min(n_windows);
        let hi = hi.min(n_windows);
        let n_buckets = (bucket_hint.max(16))
            .checked_next_power_of_two()
            .ok_or(IndexBuildError::BucketTableOverflow { len: codes.len() })?;
        let shift = 64 - n_buckets.trailing_zeros();

        // Pass 1: count bucket sizes into what becomes the starts table.
        let mut bucket_starts = vec![0u32; n_buckets + 1];
        for pos in lo..hi {
            if let Some(word) = shape.word_at(codes, pos) {
                bucket_starts[hash_word(word, shift) + 1] += 1;
            }
        }

        // Prefix sums → bucket starts (slot `n_buckets` holds the total).
        for i in 1..bucket_starts.len() {
            bucket_starts[i] += bucket_starts[i - 1];
        }
        let total = bucket_starts[n_buckets] as usize;

        // Pass 2: re-derive each window's word and scatter it straight
        // into its bucket, advancing `bucket_starts[h]` as the cursor.
        // Re-deriving costs a second `word_at` sweep but avoids staging
        // every `(word, pos)` pair next to the final array — peak memory
        // is one table plus one entries array.
        let mut entries = vec![(0u64, 0u32); total];
        for pos in lo..hi {
            if let Some(word) = shape.word_at(codes, pos) {
                let h = hash_word(word, shift);
                entries[bucket_starts[h] as usize] = (word, pos as u32);
                bucket_starts[h] += 1;
            }
        }
        // After the scatter, slot `h` holds the *end* of bucket `h` and
        // the last slot still holds the total (== end of the last
        // bucket): rotating right by one and zeroing slot 0 restores the
        // starts layout without a second table.
        bucket_starts.rotate_right(1);
        bucket_starts[0] = 0;

        Ok(SeedIndex {
            shape,
            shift,
            bucket_starts,
            entries,
            target_len: target.len(),
        })
    }

    /// Reassembles an index from raw parts (the persist loader).
    pub(crate) fn from_parts(
        shape: SeedShape,
        shift: u32,
        bucket_starts: Vec<u32>,
        entries: Vec<(u64, u32)>,
        target_len: usize,
    ) -> SeedIndex {
        SeedIndex {
            shape,
            shift,
            bucket_starts,
            entries,
            target_len,
        }
    }

    /// The seed shape this index was built with.
    pub fn shape(&self) -> &SeedShape {
        &self.shape
    }

    /// Length of the indexed target.
    pub fn target_len(&self) -> usize {
        self.target_len
    }

    /// Number of indexed windows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no windows were indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The multiply-shift hash shift (serialized by the persist layer).
    pub(crate) fn shift(&self) -> u32 {
        self.shift
    }

    /// The bucket-starts table (serialized by the persist layer).
    pub(crate) fn bucket_starts(&self) -> &[u32] {
        &self.bucket_starts
    }

    /// The flat entries (serialized by the persist layer).
    pub(crate) fn entries(&self) -> &[(u64, u32)] {
        &self.entries
    }

    /// Resident heap bytes of the built index (table + entries).
    pub fn heap_bytes(&self) -> usize {
        self.bucket_starts.len() * std::mem::size_of::<u32>()
            + self.entries.len() * std::mem::size_of::<(u64, u32)>()
    }

    /// All target positions whose seed word equals `word`.
    #[inline]
    pub fn lookup(&self, word: u64) -> impl Iterator<Item = u32> + '_ {
        let h = hash_word(word, self.shift);
        let lo = self.bucket_starts[h] as usize;
        let hi = self.bucket_starts[h + 1] as usize;
        self.entries[lo..hi]
            .iter()
            .filter(move |&&(w, _)| w == word)
            .map(|&(_, pos)| pos)
    }

    /// Mean bucket occupancy among non-empty buckets (diagnostic).
    pub fn mean_bucket_occupancy(&self) -> f64 {
        let mut nonempty = 0usize;
        for h in 0..self.bucket_starts.len() - 1 {
            if self.bucket_starts[h + 1] > self.bucket_starts[h] {
                nonempty += 1;
            }
        }
        if nonempty == 0 {
            0.0
        } else {
            self.entries.len() as f64 / nonempty as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastz_genome::evolve::random_sequence;

    fn seq(ascii: &[u8]) -> Sequence {
        Sequence::from_ascii("t", ascii).unwrap()
    }

    #[test]
    fn index_finds_all_occurrences() {
        let s = seq(b"ACGTACGTACGT");
        let idx = SeedIndex::build(&s, SeedShape::exact(4));
        let word = idx.shape().word_at(s.codes(), 0).unwrap();
        let mut hits: Vec<u32> = idx.lookup(word).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 4, 8]);
    }

    #[test]
    fn index_lookup_misses() {
        let s = seq(b"AAAAAAAA");
        let idx = SeedIndex::build(&s, SeedShape::exact(4));
        // Word for "TTTT" does not occur.
        let probe = seq(b"TTTT");
        let word = idx.shape().word_at(probe.codes(), 0).unwrap();
        assert_eq!(idx.lookup(word).count(), 0);
    }

    #[test]
    fn n_windows_are_excluded() {
        let s = seq(b"ACGTNACGT");
        let idx = SeedIndex::build(&s, SeedShape::exact(4));
        // Windows at 1..=4 all cover the N; only 0 and 5 index.
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn empty_and_short_sequences() {
        let s = seq(b"AC");
        let idx = SeedIndex::build(&s, SeedShape::exact(4));
        assert!(idx.is_empty());
        let e = Sequence::from_codes("e", vec![]);
        assert!(SeedIndex::build(&e, SeedShape::exact(4)).is_empty());
    }

    #[test]
    fn exhaustive_agreement_with_naive_scan() {
        let t = random_sequence("t", 4_000, 0.5, 99);
        let shape = SeedShape::lastz_12of19();
        let idx = SeedIndex::build(&t, shape.clone());
        // Probe 200 windows of the same sequence: index hits must equal a
        // naive all-positions scan.
        for probe in (0..2_000).step_by(10) {
            let Some(word) = shape.word_at(t.codes(), probe) else {
                continue;
            };
            let mut from_index: Vec<u32> = idx.lookup(word).collect();
            from_index.sort_unstable();
            let naive: Vec<u32> = (0..t.len() - shape.span() + 1)
                .filter(|&p| shape.word_at(t.codes(), p) == Some(word))
                .map(|p| p as u32)
                .collect();
            assert_eq!(from_index, naive, "probe {probe}");
        }
    }

    #[test]
    fn bucket_positions_ascend_within_each_bucket() {
        // The scatter walks positions in ascending order, so every bucket
        // (and therefore every lookup) yields ascending target positions —
        // the property sharded concatenation relies on.
        let t = random_sequence("t", 3_000, 0.5, 17);
        let idx = SeedIndex::build(&t, SeedShape::exact(8));
        for h in 0..idx.bucket_starts.len() - 1 {
            let lo = idx.bucket_starts[h] as usize;
            let hi = idx.bucket_starts[h + 1] as usize;
            let bucket = &idx.entries[lo..hi];
            assert!(
                bucket.windows(2).all(|w| w[0].1 < w[1].1),
                "bucket {h} positions not ascending"
            );
        }
    }

    #[test]
    fn interval_builds_partition_the_full_index() {
        let t = random_sequence("t", 2_500, 0.5, 41);
        let shape = SeedShape::lastz_12of19();
        let full = SeedIndex::build(&t, shape.clone());
        let n_windows = t.len() - shape.span() + 1;
        let mid = n_windows / 3;
        let left = SeedIndex::try_build_interval(&t, shape.clone(), 0, mid).unwrap();
        let right = SeedIndex::try_build_interval(&t, shape.clone(), mid, n_windows).unwrap();
        assert_eq!(full.len(), left.len() + right.len());
        for probe in (0..n_windows).step_by(7) {
            let Some(word) = shape.word_at(t.codes(), probe) else {
                continue;
            };
            let mut whole: Vec<u32> = full.lookup(word).collect();
            whole.sort_unstable();
            let mut split: Vec<u32> = left.lookup(word).chain(right.lookup(word)).collect();
            split.sort_unstable();
            assert_eq!(whole, split, "probe {probe}");
        }
    }

    #[test]
    fn over_limit_target_is_a_structured_error() {
        // The boundary check itself (no 4 GiB allocation needed).
        assert!(check_target_len(MAX_TARGET_LEN).is_ok());
        let err = check_target_len(MAX_TARGET_LEN + 1).unwrap_err();
        assert_eq!(
            err,
            IndexBuildError::TargetTooLarge {
                len: MAX_TARGET_LEN + 1,
                max: MAX_TARGET_LEN,
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("4294967295"), "error names the limit: {msg}");
        // In-range targets build fine through the fallible path.
        let t = random_sequence("t", 500, 0.5, 7);
        assert!(SeedIndex::try_build(&t, SeedShape::exact(8)).is_ok());
    }

    #[test]
    fn peak_build_accounting_beats_legacy() {
        let t = random_sequence("t", 10_000, 0.5, 5);
        let idx = SeedIndex::build(&t, SeedShape::exact(12));
        let n_windows = t.len() - 12 + 1;
        let n_buckets = idx.bucket_starts.len() - 1;
        let new_peak = build_peak_bytes(idx.len(), n_buckets);
        let old_peak = legacy_build_peak_bytes(n_windows, idx.len(), n_buckets);
        assert!(
            new_peak * 2 <= old_peak + 1,
            "single-table build should at least halve peak bytes: {new_peak} vs {old_peak}"
        );
        assert_eq!(new_peak, idx.heap_bytes());
    }

    #[test]
    fn occupancy_is_reported() {
        let t = random_sequence("t", 10_000, 0.5, 3);
        let idx = SeedIndex::build(&t, SeedShape::exact(12));
        let occ = idx.mean_bucket_occupancy();
        assert!((1.0..4.0).contains(&occ), "occupancy {occ}");
    }
}
