//! Workload construction: from a genome pair to a filtered anchor list.
//!
//! Bundles stages 1-2 of the pipeline (seeding + filtering) with the
//! paper's methodology knobs (seed budget per benchmark) so that drivers,
//! the FastZ pipeline, and the bench harnesses all build identical
//! workloads.

use crate::anchor::{
    band_filter, filter_anchors, find_anchors_in, sample_anchors, Anchor, AnchorSource,
};
use crate::index::SeedIndex;
use crate::shape::SeedShape;
use fastz_genome::Sequence;

/// Parameters for workload construction.
#[derive(Clone, Debug)]
pub struct WorkloadParams {
    /// Seed shape (default: LASTZ 12-of-19).
    pub shape: SeedShape,
    /// Fine per-diagonal spacing filter window in bp (0 disables; the
    /// default keeps the paper's dense seed-site regime).
    pub filter_window: u32,
    /// Coarse band filter: diagonal band width (0 disables).
    pub band: u32,
    /// Coarse band filter: spacing window in bp (0 disables). Thins the
    /// seed flood inside long conserved segments to match the paper's
    /// Table 2 statistics (few seeds per long alignment).
    pub band_window: u32,
    /// Maximum number of anchors after subsampling (0 = unlimited). The
    /// paper uses 1 M seed sites; scaled harnesses use less.
    pub max_anchors: usize,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            shape: SeedShape::lastz_12of19(),
            filter_window: 0,
            band: 64,
            band_window: 4_096,
            max_anchors: 0,
        }
    }
}

/// A ready-to-extend workload: the anchor list plus construction stats.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Filtered, subsampled anchors.
    pub anchors: Vec<Anchor>,
    /// Raw anchor count before filtering.
    pub raw_anchors: usize,
    /// Anchor count after the diagonal filter, before subsampling.
    pub filtered_anchors: usize,
    /// Seed shape used.
    pub shape: SeedShape,
}

impl Workload {
    /// Builds the workload for `(target, query)` under `params`.
    pub fn build(target: &Sequence, query: &Sequence, params: &WorkloadParams) -> Workload {
        let index = SeedIndex::build(target, params.shape.clone());
        Workload::build_with_index(&index, query, params)
    }

    /// Builds the workload for `query` against a prebuilt seed index —
    /// the service path, where one shared (possibly persisted, sharded)
    /// index serves many requests without a per-run rebuild. The shape
    /// comes from the index; `params.shape` is ignored.
    pub fn build_with_index<S: AnchorSource + ?Sized>(
        index: &S,
        query: &Sequence,
        params: &WorkloadParams,
    ) -> Workload {
        let raw = find_anchors_in(index, query);
        let filtered = filter_anchors(&raw, params.filter_window);
        let filtered = band_filter(&filtered, params.band, params.band_window);
        let filtered_anchors = filtered.len();
        // `filtered` moves into place when no budget applies — a deep
        // clone here doubled peak anchor memory for the common
        // unlimited-budget path.
        let anchors = if params.max_anchors > 0 {
            sample_anchors(&filtered, params.max_anchors)
        } else {
            filtered
        };
        Workload {
            raw_anchors: raw.len(),
            filtered_anchors,
            anchors,
            shape: index.source_shape().clone(),
        }
    }

    /// Number of seed-extension tasks.
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// True if no anchors survived.
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastz_genome::evolve::{generate_pair, PairParams};

    #[test]
    fn workload_from_synthetic_pair_is_nonempty() {
        let pair = generate_pair(&PairParams::small_demo("w", 5));
        let wl = Workload::build(&pair.target, &pair.query, &WorkloadParams::default());
        assert!(!wl.is_empty(), "synthetic pair should produce anchors");
        assert!(wl.filtered_anchors <= wl.raw_anchors);
        assert_eq!(wl.len(), wl.anchors.len());
    }

    #[test]
    fn filtering_reduces_anchor_count() {
        let pair = generate_pair(&PairParams::small_demo("w", 6));
        let unfiltered = Workload::build(
            &pair.target,
            &pair.query,
            &WorkloadParams {
                filter_window: 0,
                band: 0,
                band_window: 0,
                ..WorkloadParams::default()
            },
        );
        let filtered = Workload::build(&pair.target, &pair.query, &WorkloadParams::default());
        assert!(filtered.len() < unfiltered.len());
    }

    #[test]
    fn max_anchors_caps_workload() {
        let pair = generate_pair(&PairParams::small_demo("w", 7));
        let wl = Workload::build(
            &pair.target,
            &pair.query,
            &WorkloadParams {
                max_anchors: 50,
                ..WorkloadParams::default()
            },
        );
        assert!(wl.len() <= 50);
        assert!(wl.filtered_anchors >= wl.len());
    }

    #[test]
    fn anchor_composition_matches_workload_design() {
        // Default filtering keeps the dense chance-anchor background (the
        // paper's dominant eager-traceback class) while the band filter
        // thins planted segments to roughly one anchor per diagonal band:
        // planted-homology anchors are a real but minority share.
        let pair = generate_pair(&PairParams::small_demo("w", 8));
        let wl = Workload::build(&pair.target, &pair.query, &WorkloadParams::default());
        let in_truth = wl
            .anchors
            .iter()
            .filter(|a| {
                pair.truth.iter().any(|s| {
                    (a.target_pos as usize) >= s.target_start.saturating_sub(19)
                        && (a.target_pos as usize) < s.target_start + s.target_len
                })
            })
            .count();
        let frac = in_truth as f64 / wl.len() as f64;
        assert!(
            (0.02..0.9).contains(&frac),
            "homology anchor share {frac:.2} outside the designed range"
        );
        // Every planted segment should still be discoverable: at least
        // half the segments contain a kept anchor.
        let covered = pair
            .truth
            .iter()
            .filter(|s| {
                wl.anchors.iter().any(|a| {
                    (a.target_pos as usize) >= s.target_start.saturating_sub(19)
                        && (a.target_pos as usize) < s.target_start + s.target_len
                })
            })
            .count();
        assert!(
            covered * 2 >= pair.truth.len(),
            "only {covered}/{} planted segments have anchors",
            pair.truth.len()
        );
    }
}
