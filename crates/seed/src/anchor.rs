//! Anchors (seed matches) and stage-2 seed filtering.
//!
//! An anchor is one seed match: a (target position, query position) pair
//! for which the seed shape matches. Stage 2 of the pipeline (paper §2)
//! filters the raw anchors to a shorter list of promising sites; like
//! LASTZ we apply a per-diagonal spacing rule — a new anchor on the same
//! diagonal is suppressed if it starts within `window` bp of the
//! previously accepted anchor on that diagonal — followed by optional
//! deterministic subsampling to the harness's seed budget.

use crate::index::SeedIndex;
use crate::shape::SeedShape;
use fastz_genome::Sequence;
use std::collections::HashMap;

/// Anything that can answer "which target positions carry this seed word"
/// for one seed shape — the in-memory [`SeedIndex`] and the persisted
/// [`crate::persist::ShardedSeedIndex`] both implement it, so workload
/// construction is source-agnostic (and provably identical across them).
pub trait AnchorSource {
    /// The seed shape the source was built with.
    fn source_shape(&self) -> &SeedShape;
    /// Appends every target position whose seed word equals `word` to
    /// `out`. Order may be arbitrary; callers sort.
    fn positions_into(&self, word: u64, out: &mut Vec<u32>);
}

impl AnchorSource for SeedIndex {
    fn source_shape(&self) -> &SeedShape {
        self.shape()
    }

    fn positions_into(&self, word: u64, out: &mut Vec<u32>) {
        out.extend(self.lookup(word));
    }
}

/// One seed match.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Anchor {
    /// Start of the seed window in the target.
    pub target_pos: u32,
    /// Start of the seed window in the query.
    pub query_pos: u32,
}

impl Anchor {
    /// The anchor's diagonal (`target_pos - query_pos`).
    #[inline]
    pub fn diagonal(&self) -> i64 {
        self.target_pos as i64 - self.query_pos as i64
    }

    /// The anti-diagonal (`target_pos + query_pos`), which orders anchors
    /// along a diagonal.
    #[inline]
    pub fn anti_diagonal(&self) -> u64 {
        self.target_pos as u64 + self.query_pos as u64
    }
}

/// Enumerates all anchors between the indexed target and `query`.
///
/// Anchors are produced in query-position order (and target-position order
/// within one query position).
pub fn find_anchors(index: &SeedIndex, query: &Sequence) -> Vec<Anchor> {
    find_anchors_in(index, query)
}

/// [`find_anchors`] over any [`AnchorSource`] (in-memory or persisted
/// sharded index): same enumeration order, same anchors.
pub fn find_anchors_in<S: AnchorSource + ?Sized>(source: &S, query: &Sequence) -> Vec<Anchor> {
    let shape = source.source_shape();
    let codes = query.codes();
    let mut anchors = Vec::new();
    let mut hits: Vec<u32> = Vec::new();
    let n_windows = codes.len().saturating_sub(shape.span().saturating_sub(1));
    for q in 0..n_windows {
        if let Some(word) = shape.word_at(codes, q) {
            hits.clear();
            source.positions_into(word, &mut hits);
            hits.sort_unstable();
            for &t in &hits {
                anchors.push(Anchor {
                    target_pos: t,
                    query_pos: q as u32,
                });
            }
        }
    }
    anchors
}

/// Diagonal-spacing filter: keeps an anchor only if no previously kept
/// anchor on the same diagonal starts within `window` bp before it.
///
/// With `window == 0` every anchor is kept. Input order is preserved.
/// Anchors must be sorted by `anti_diagonal` within each diagonal (the
/// order [`find_anchors`] produces) for the rule to be exact.
pub fn filter_anchors(anchors: &[Anchor], window: u32) -> Vec<Anchor> {
    if window == 0 {
        return anchors.to_vec();
    }
    let mut last_kept: HashMap<i64, u64> = HashMap::new();
    let mut kept = Vec::with_capacity(anchors.len() / 2 + 1);
    for &a in anchors {
        let diag = a.diagonal();
        let ad = a.anti_diagonal();
        match last_kept.get(&diag) {
            Some(&prev) if ad < prev + 2 * window as u64 => {}
            _ => {
                last_kept.insert(diag, ad);
                kept.push(a);
            }
        }
    }
    kept
}

/// Coarse per-diagonal-band spacing filter (stage-2 refinement).
///
/// Whole-genome seed lists are extremely dense inside long conserved
/// segments — hundreds of seeds all re-discovering the same alignment.
/// The paper's seed statistics (Table 2: only tens of seeds reach the
/// largest bins out of a million) show the filtering stage passes very
/// few seeds per long alignment, while short-segment and chance seeds
/// pass essentially untouched. This filter reproduces that: diagonals
/// are quantized into bands of `band` diagonals, and within a band a new
/// anchor is suppressed when a kept anchor started within `window` bp
/// before it (indels shift an alignment across nearby diagonals, which
/// the banding absorbs). Segments shorter than `window` keep ~1 anchor
/// per diagonal band; chance anchors on scattered diagonals are kept.
pub fn band_filter(anchors: &[Anchor], band: u32, window: u32) -> Vec<Anchor> {
    if band == 0 || window == 0 {
        return anchors.to_vec();
    }
    let mut last_kept: HashMap<i64, u64> = HashMap::new();
    let mut kept = Vec::with_capacity(anchors.len() / 2 + 1);
    for &a in anchors {
        let bucket = a.diagonal().div_euclid(band as i64);
        let ad = a.anti_diagonal();
        // Check this band and both neighbours (a segment straddling a
        // bucket boundary would otherwise pass two anchors).
        let suppressed = [bucket - 1, bucket, bucket + 1].iter().any(|b| {
            last_kept
                .get(b)
                .is_some_and(|&prev| ad < prev + 2 * window as u64)
        });
        if !suppressed {
            last_kept.insert(bucket, ad);
            kept.push(a);
        }
    }
    kept
}

/// Deterministically subsamples `anchors` down to at most `max` entries,
/// evenly spaced over the input (preserving order and the head/tail).
pub fn sample_anchors(anchors: &[Anchor], max: usize) -> Vec<Anchor> {
    if anchors.len() <= max || max == 0 {
        return anchors.to_vec();
    }
    let stride = anchors.len() as f64 / max as f64;
    (0..max)
        .map(|i| anchors[(i as f64 * stride) as usize])
        .collect()
}

/// Convenience: index-free verification that an anchor is genuine
/// (used by tests and debug assertions).
pub fn verify_anchor(
    anchor: &Anchor,
    target: &Sequence,
    query: &Sequence,
    shape: &crate::shape::SeedShape,
) -> bool {
    shape.matches(
        target.codes(),
        anchor.target_pos as usize,
        query.codes(),
        anchor.query_pos as usize,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::SeedShape;
    use fastz_genome::evolve::random_sequence;
    use fastz_genome::Sequence;

    fn seq(ascii: &[u8]) -> Sequence {
        Sequence::from_ascii("t", ascii).unwrap()
    }

    #[test]
    fn anchors_found_for_shared_kmer() {
        let target = seq(b"TTTTACGTACGGTTTT");
        let query = seq(b"GGGGACGTACGGGGGG");
        let idx = SeedIndex::build(&target, SeedShape::exact(8));
        let anchors = find_anchors(&idx, &query);
        assert!(anchors.contains(&Anchor {
            target_pos: 4,
            query_pos: 4
        }));
        for a in &anchors {
            assert!(verify_anchor(a, &target, &query, idx.shape()));
        }
    }

    #[test]
    fn no_anchors_between_disjoint_sequences() {
        let target = seq(b"AAAAAAAAAAAA");
        let query = seq(b"CCCCCCCCCCCC");
        let idx = SeedIndex::build(&target, SeedShape::exact(6));
        assert!(find_anchors(&idx, &query).is_empty());
    }

    #[test]
    fn anchors_are_exhaustive_vs_naive() {
        let target = random_sequence("t", 1_500, 0.5, 21);
        let query = random_sequence("q", 1_500, 0.5, 22);
        let shape = SeedShape::exact(7); // short seed → some chance hits
        let idx = SeedIndex::build(&target, shape.clone());
        let mut found = find_anchors(&idx, &query);
        found.sort_by_key(|a| (a.query_pos, a.target_pos));

        let mut naive = Vec::new();
        for q in 0..query.len() - shape.span() + 1 {
            for t in 0..target.len() - shape.span() + 1 {
                if shape.matches(target.codes(), t, query.codes(), q) {
                    naive.push(Anchor {
                        target_pos: t as u32,
                        query_pos: q as u32,
                    });
                }
            }
        }
        naive.sort_by_key(|a| (a.query_pos, a.target_pos));
        assert_eq!(found, naive);
    }

    #[test]
    fn diagonal_and_antidiagonal() {
        let a = Anchor {
            target_pos: 10,
            query_pos: 4,
        };
        assert_eq!(a.diagonal(), 6);
        assert_eq!(a.anti_diagonal(), 14);
    }

    #[test]
    fn filter_suppresses_nearby_same_diagonal() {
        let anchors = vec![
            Anchor {
                target_pos: 0,
                query_pos: 0,
            },
            Anchor {
                target_pos: 5,
                query_pos: 5,
            }, // same diagonal, close
            Anchor {
                target_pos: 100,
                query_pos: 100,
            }, // same diagonal, far
            Anchor {
                target_pos: 6,
                query_pos: 2,
            }, // different diagonal
        ];
        let kept = filter_anchors(&anchors, 20);
        assert_eq!(
            kept,
            vec![
                Anchor {
                    target_pos: 0,
                    query_pos: 0
                },
                Anchor {
                    target_pos: 100,
                    query_pos: 100
                },
                Anchor {
                    target_pos: 6,
                    query_pos: 2
                },
            ]
        );
    }

    #[test]
    fn filter_window_zero_keeps_everything() {
        let anchors = vec![
            Anchor {
                target_pos: 0,
                query_pos: 0,
            },
            Anchor {
                target_pos: 1,
                query_pos: 1,
            },
        ];
        assert_eq!(filter_anchors(&anchors, 0), anchors);
    }

    #[test]
    fn sample_is_even_and_deterministic() {
        let anchors: Vec<Anchor> = (0..1000)
            .map(|i| Anchor {
                target_pos: i,
                query_pos: 0,
            })
            .collect();
        let s1 = sample_anchors(&anchors, 10);
        let s2 = sample_anchors(&anchors, 10);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 10);
        assert_eq!(s1[0].target_pos, 0);
        assert!(s1[9].target_pos >= 900);
        // No-op when under budget.
        assert_eq!(sample_anchors(&anchors, 2000).len(), 1000);
    }

    #[test]
    fn spaced_seed_tolerates_wildcard_mismatches() {
        // Two sequences differing only at a wildcard position of the
        // 12-of-19 seed still anchor.
        let shape = SeedShape::lastz_12of19();
        let mut t_ascii = b"ACGTACGTACGTACGTACG".to_vec();
        let mut q_ascii = t_ascii.clone();
        // Position 3 is a wildcard in 1110100110010101111.
        q_ascii[3] = b'T';
        t_ascii[3] = b'A';
        let target = seq(&t_ascii);
        let query = seq(&q_ascii);
        let idx = SeedIndex::build(&target, shape);
        let anchors = find_anchors(&idx, &query);
        assert_eq!(
            anchors,
            vec![Anchor {
                target_pos: 0,
                query_pos: 0
            }]
        );
    }
}
