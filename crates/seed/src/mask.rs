//! Dynamic seed-word masking (LASTZ's `--maxwordcount` / dynamic
//! masking).
//!
//! Repetitive DNA makes some seed words wildly over-represented; every
//! occurrence pairs with every other, so a word appearing `k` times in
//! the target and `m` times in the query contributes `k·m` anchors —
//! repeats alone can dominate the workload. LASTZ suppresses seed words
//! whose target count exceeds a ceiling; we implement the same rule over
//! the seed index.

use crate::index::SeedIndex;
use crate::shape::SeedShape;
use fastz_genome::Sequence;
use std::collections::HashMap;

/// Words occurring more than this many times in the target are masked by
/// default (LASTZ's dynamic masking kicks in around this order of
/// magnitude for chromosome-scale inputs; scale-aware callers should set
/// their own ceiling).
pub const DEFAULT_MAX_WORD_COUNT: usize = 64;

/// A set of masked (suppressed) seed words.
#[derive(Clone, Debug, Default)]
pub struct WordMask {
    masked: HashMap<u64, usize>,
    ceiling: usize,
}

impl WordMask {
    /// Builds the mask for `target` under `shape`: every word with more
    /// than `ceiling` occurrences is masked.
    pub fn build(target: &Sequence, shape: &SeedShape, ceiling: usize) -> WordMask {
        assert!(ceiling > 0, "ceiling must be positive");
        let codes = target.codes();
        let mut counts: HashMap<u64, usize> = HashMap::new();
        let n_windows = codes.len().saturating_sub(shape.span().saturating_sub(1));
        for pos in 0..n_windows {
            if let Some(word) = shape.word_at(codes, pos) {
                *counts.entry(word).or_insert(0) += 1;
            }
        }
        WordMask {
            masked: counts.into_iter().filter(|&(_, c)| c > ceiling).collect(),
            ceiling,
        }
    }

    /// The ceiling this mask was built with.
    pub fn ceiling(&self) -> usize {
        self.ceiling
    }

    /// Number of distinct masked words.
    pub fn masked_words(&self) -> usize {
        self.masked.len()
    }

    /// Total target occurrences the mask suppresses.
    pub fn suppressed_occurrences(&self) -> usize {
        self.masked.values().sum()
    }

    /// True if `word` is suppressed.
    #[inline]
    pub fn is_masked(&self, word: u64) -> bool {
        self.masked.contains_key(&word)
    }
}

/// Enumerates anchors like [`crate::anchor::find_anchors`] but skips
/// masked words.
pub fn find_anchors_masked(
    index: &SeedIndex,
    query: &Sequence,
    mask: &WordMask,
) -> Vec<crate::anchor::Anchor> {
    let shape = index.shape();
    let codes = query.codes();
    let mut anchors = Vec::new();
    let n_windows = codes.len().saturating_sub(shape.span().saturating_sub(1));
    for q in 0..n_windows {
        if let Some(word) = shape.word_at(codes, q) {
            if mask.is_masked(word) {
                continue;
            }
            let mut hits: Vec<u32> = index.lookup(word).collect();
            hits.sort_unstable();
            for t in hits {
                anchors.push(crate::anchor::Anchor {
                    target_pos: t,
                    query_pos: q as u32,
                });
            }
        }
    }
    anchors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchor::find_anchors;
    use fastz_genome::evolve::random_sequence;

    fn repeat_laden() -> Sequence {
        // Random background with an exact 8-mer repeated 40 times.
        let bg = random_sequence("bg", 4_000, 0.5, 71);
        let mut codes = bg.codes().to_vec();
        let unit = [0u8, 1, 2, 3, 0, 0, 1, 1]; // ACGTAACC
        for k in 0..40 {
            let at = 50 + k * 90;
            codes[at..at + 8].copy_from_slice(&unit);
        }
        Sequence::from_codes("rep", codes)
    }

    #[test]
    fn mask_catches_the_planted_repeat() {
        let t = repeat_laden();
        let shape = SeedShape::exact(8);
        let mask = WordMask::build(&t, &shape, 16);
        assert!(mask.masked_words() >= 1);
        let unit_word = shape.word_at(&[0u8, 1, 2, 3, 0, 0, 1, 1], 0).unwrap();
        assert!(mask.is_masked(unit_word));
        assert!(mask.suppressed_occurrences() >= 40);
        assert_eq!(mask.ceiling(), 16);
    }

    #[test]
    fn high_ceiling_masks_nothing_in_random_sequence() {
        let t = random_sequence("r", 5_000, 0.5, 72);
        let mask = WordMask::build(&t, &SeedShape::lastz_12of19(), DEFAULT_MAX_WORD_COUNT);
        assert_eq!(mask.masked_words(), 0);
    }

    #[test]
    fn masked_enumeration_removes_repeat_anchors_only() {
        let t = repeat_laden();
        let q = repeat_laden(); // same repeat in the query
        let shape = SeedShape::exact(8);
        let idx = SeedIndex::build(&t, shape.clone());
        let mask = WordMask::build(&t, &shape, 16);

        let all = find_anchors(&idx, &q);
        let masked = find_anchors_masked(&idx, &q, &mask);
        // The repeat unit alone contributes ≥ 40×40 anchors.
        assert!(all.len() >= masked.len() + 1_600);
        // Every surviving anchor's word is unmasked.
        for a in &masked {
            let w = shape.word_at(q.codes(), a.query_pos as usize).unwrap();
            assert!(!mask.is_masked(w));
        }
        // And surviving anchors are a subset of the full set.
        for a in &masked {
            assert!(all.contains(a));
        }
    }

    #[test]
    #[should_panic]
    fn zero_ceiling_rejected() {
        WordMask::build(&repeat_laden(), &SeedShape::exact(8), 0);
    }
}
