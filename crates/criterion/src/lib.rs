//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the benchmark-harness surface its benches use. Measurement is
//! a simple wall-clock median over `sample_size` iterations (after one
//! warm-up), printed as a one-line text report — enough to compare
//! kernels locally; not a statistical replacement for real criterion.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A new id from a function name and parameter display.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

/// Throughput annotation (recorded for the report line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-iteration timing harness.
pub struct Bencher {
    samples: usize,
    last_median: Duration,
}

impl Bencher {
    /// Times `f`, keeping the median of `samples` runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort();
        self.last_median = times[times.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.last_median.as_secs_f64();
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  {:.1} MiB/s", n as f64 / per_iter / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  {:.2} Melem/s", n as f64 / per_iter / 1e6)
            }
            _ => String::new(),
        };
        println!("{}/{id}: {per_iter:.6} s/iter{rate}", self.name);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run_one(id.into(), f);
        self
    }

    /// Benchmarks `f` with an input value under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run_one(id.id, |b| f(b, input));
        self
    }

    /// Ends the group (report lines are already printed).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut g = BenchmarkGroup {
            name: "bench".into(),
            criterion: self,
            throughput: None,
        };
        g.run_one(id.into(), f);
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("mul", |b| b.iter(|| black_box(6u64) * 7));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
