//! Property and regression tests for the warp engine.
//!
//! The strip-width sweep guards the spill path: every boundary-column
//! handoff between strips (the `Spill` buffer) is exercised at widths
//! from 1 (every column is a boundary) to 32 (one warp-wide strip),
//! and the result must not depend on the lane count.

use fastz_align::ydrop::{ydrop_extend_traced, YDropScratch};
use fastz_align::{DenseTrace, PruneMode};
use fastz_core::{warp_extend_traced, OptFlags, WarpConfig, WarpExtension};
use fastz_genome::evolve::random_codes;
use fastz_genome::{GapPenalties, Scoring, SubstMatrix};
use fastz_gpu_sim::SharedMem;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn scoring() -> Scoring {
    Scoring {
        subst: SubstMatrix::match_mismatch(10, -15),
        gaps: GapPenalties::new(30, 5),
        ydrop: 120,
        xdrop: 40,
        hsp_threshold: 50,
        gapped_threshold: 50,
    }
}

/// A noisy homologous pair: a random target and a mutated copy with a
/// handful of substitutions and one small indel.
fn homologous_pair(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let t = random_codes(len, 0.45, &mut rng);
    let mut q = t.clone();
    for b in q.iter_mut() {
        if rng.gen_bool(0.04) {
            *b = (*b + rng.gen_range(1..4)) & 3;
        }
    }
    let cut = rng.gen_range(0..q.len().saturating_sub(4).max(1));
    let indel = rng.gen_range(1..4.min(q.len() - cut).max(2));
    q.drain(cut..cut + indel);
    (t, q)
}

fn warp_at_width(t: &[u8], q: &[u8], width: usize) -> (WarpExtension, DenseTrace) {
    let cfg = WarpConfig::inspector(&OptFlags::fastz()).with_strip_width(width);
    let mut shared = SharedMem::new(96 * 1024);
    let mut trace = DenseTrace::default();
    let r = warp_extend_traced(t, q, &scoring(), &cfg, &mut shared, &mut trace);
    (r, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The inspector's (score, best_i, best_j) must be invariant under
    /// the strip width: narrower strips only change which columns spill
    /// through the boundary buffer, never the DP values.
    #[test]
    fn strip_width_leaves_results_invariant(
        len in 48usize..220,
        seed in any::<u64>(),
    ) {
        let (t, q) = homologous_pair(len, seed);
        let (reference, _) = warp_at_width(&t, &q, 32);
        for width in [1usize, 2, 4, 8, 16, 17, 31] {
            let (r, trace) = warp_at_width(&t, &q, width);
            prop_assert_eq!(
                (r.best_score, r.best_i, r.best_j),
                (reference.best_score, reference.best_i, reference.best_j),
                "width {} disagrees with width 32", width
            );
            // The best cell must carry the best score in the trace.
            if r.best_i > 0 && r.best_j > 0 {
                prop_assert_eq!(
                    trace.s(r.best_i, r.best_j),
                    Some(r.best_score),
                    "width {}: best cell missing from its own trace", width
                );
            }
            // Counter self-consistency scales with the width.
            prop_assert_eq!(r.counters.alu_ops, r.counters.steps * 9 * width as u64);
            prop_assert_eq!(r.counters.shuffles % 3, 0);
        }
    }

    /// Exact-scalar live cells form a subset of the warp engine's live
    /// cells (row 0 and column 0 are analytic in the warp engine and
    /// never recorded), and the warp values dominate.
    ///
    /// Regression: the strip-entry row window used to be judged against
    /// the *global* running best (`best_score - ydrop`). That best
    /// already contains cells from rows below the candidate row,
    /// computed in earlier strips — cells a row-major scan has not
    /// reached yet — so the window over-pruned rows the scalar engines
    /// keep (first seen as pruned cells in column `strip_base + 1` of
    /// the second strip). The window must be judged against the
    /// order-safe row-prefix maxima, like the in-strip threshold.
    #[test]
    fn warp_live_set_covers_exact_scalar(
        len in 48usize..220,
        seed in any::<u64>(),
    ) {
        let (t, q) = homologous_pair(len, seed);
        let mut exact_trace = DenseTrace::default();
        let exact = ydrop_extend_traced(
            &t,
            &q,
            &scoring(),
            PruneMode::Exact,
            false,
            &mut YDropScratch::default(),
            &mut exact_trace,
        );
        let (warp, warp_trace) = warp_at_width(&t, &q, 32);
        prop_assert!(
            warp.best_score >= exact.best_score,
            "warp {} < exact {}", warp.best_score, exact.best_score
        );
        for (&(i, j), cell) in exact_trace.cells.iter() {
            if i == 0 || j == 0 {
                continue;
            }
            let w = warp_trace.s(i, j);
            prop_assert!(
                w.is_some_and(|s| s >= cell.s),
                "cell ({}, {}) live in exact (S = {}) but warp has {:?}",
                i, j, cell.s, w
            );
        }
    }
}
