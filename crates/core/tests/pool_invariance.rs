//! Thread-invariance properties of the host execution pool.
//!
//! The pool's determinism contract: the `FastZReport` — alignments
//! (scores and edit scripts), bin counts, work counters, and the
//! modeled GPU time's exact bits — must be identical for every
//! `sim_threads` value and both dispatch modes, fault-free and under a
//! `FaultPlan` alike. Only host wall-clock may change.
//!
//! CI runs this at a reduced case count via `FASTZ_PROP_CASES`.

use fastz_core::{run_fastz_resilient, FastZConfig, HostDispatch, ResilienceConfig};
use fastz_genome::evolve::{generate_pair, PairParams};
use fastz_genome::{Scoring, Sequence};
use fastz_gpu_sim::{DeviceSpec, FaultPlan};
use fastz_seed::{Anchor, Workload, WorkloadParams};
use proptest::prelude::*;

/// Case count: default 10, overridable (CI smoke runs fewer).
fn cases() -> u32 {
    std::env::var("FASTZ_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

fn corpus(seed: u64, segments: usize) -> (Sequence, Sequence, Vec<Anchor>, usize) {
    let pair = generate_pair(&PairParams {
        target_len: 9_000,
        query_len: 9_000,
        segments,
        ..PairParams::small_demo("inv", seed)
    });
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 150,
            ..WorkloadParams::default()
        },
    );
    let span = wl.shape.span();
    (pair.target, pair.query, wl.anchors, span)
}

/// Everything in a report that must be invariant (host wall-clock and
/// kernel spec labels aside, the whole observable result).
#[derive(Debug, PartialEq)]
struct Fingerprint {
    alignments: Vec<fastz_align::Alignment>,
    bin_counts: fastz_core::BinCounts,
    modeled_time_bits: u64,
    eager_resolved: usize,
    executor_problems: usize,
    inspector_cells: u64,
    executor_cells: u64,
    skipped_seeds: Vec<usize>,
    overhead_bits: u64,
}

fn fingerprint(
    corpus: &(Sequence, Sequence, Vec<Anchor>, usize),
    threads: usize,
    dispatch: HostDispatch,
    rcfg: &ResilienceConfig,
) -> Fingerprint {
    let (t, q, anchors, span) = corpus;
    let cfg = FastZConfig {
        sim_threads: threads,
        host_dispatch: dispatch,
        ..FastZConfig::new(Scoring::bench_scaled(), DeviceSpec::rtx3080_ampere())
    };
    let r = run_fastz_resilient(t, q, anchors, *span, &cfg, rcfg);
    Fingerprint {
        alignments: r.alignments,
        bin_counts: r.bin_counts,
        modeled_time_bits: r.modeled_time_s.to_bits(),
        eager_resolved: r.stats.eager_resolved,
        executor_problems: r.stats.executor_problems,
        inspector_cells: r.stats.inspector.total.cells,
        executor_cells: r.stats.executor.total.cells,
        skipped_seeds: r.resilience.skipped_seeds,
        overhead_bits: r.resilience.overhead_s.to_bits(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Fault-free runs: identical reports for sim_threads ∈
    /// {1, 2, 7, all-available} under both dispatch modes.
    #[test]
    fn report_is_invariant_across_sim_threads(
        seed in any::<u64>(),
        segments in 10usize..28,
    ) {
        let c = corpus(seed, segments);
        let rcfg = ResilienceConfig::disabled();
        let reference = fingerprint(&c, 1, HostDispatch::Stealing, &rcfg);
        prop_assert!(reference.bin_counts.total() > 0);
        for threads in [2usize, 7, 0] {
            for dispatch in [HostDispatch::Stealing, HostDispatch::Static] {
                let got = fingerprint(&c, threads, dispatch, &rcfg);
                prop_assert_eq!(
                    &got, &reference,
                    "threads {} / {:?} diverged", threads, dispatch
                );
            }
        }
    }

    /// The same invariance under an injected fault schedule: the
    /// bit-flip ladder, fallbacks, and skip-with-record decisions are
    /// keyed by problem index, never by worker.
    #[test]
    fn report_is_invariant_under_a_fault_plan(
        seed in any::<u64>(),
        plan_seed in any::<u64>(),
    ) {
        let c = corpus(seed, 16);
        let rcfg = ResilienceConfig::with_plan(FaultPlan::from_seed(plan_seed));
        let reference = fingerprint(&c, 1, HostDispatch::Stealing, &rcfg);
        for threads in [2usize, 7, 0] {
            for dispatch in [HostDispatch::Stealing, HostDispatch::Static] {
                let got = fingerprint(&c, threads, dispatch, &rcfg);
                prop_assert_eq!(
                    &got, &reference,
                    "faulted run at threads {} / {:?} diverged", threads, dispatch
                );
            }
        }
    }
}
