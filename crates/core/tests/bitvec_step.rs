//! Differential pinning of the bitvector window step to a dense
//! edit-distance reference, mirroring `simd_step.rs`.
//!
//! The per-window property drives [`fastz_core::bitvec::window_masks`]
//! with adversarial windows — every pattern length 1..=64, text runs
//! past the reachable diagonal, *every* edit budget `k in 1..=63` — and
//! demands bit-for-bit equality of the dead masks against a dense
//! Levenshtein DP: bit `b` of `R[d]` at column `j` is set exactly when
//! `ED(pattern[..b+1], text[..j]) > d`, and every beyond-window bit is
//! set. The whole-extension property then checks the unit-cost score
//! relation on full engine runs: the dense edit distance lower-bounds
//! the script's edit count, so the engine's score never exceeds the
//! dense unit-cost optimum — with exact equality on the single-window
//! overlap domain. The final tests mirror the satellite clamp audit:
//! the candidate-score arithmetic the engine routes through
//! `score::add_clamped` must saturate, not wrap, for i32::MIN-adjacent
//! operands.

use fastz_align::score;
use fastz_core::bitvec::window_masks;
use fastz_core::{bitvec_extend, BitvecConfig};
use fastz_genome::evolve::random_codes;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The engine's score floor (`fastz_align::ydrop::NEG_INF`), restated
/// so this file fails loudly if the sentinel ever moves.
const NEG_INF: i32 = i32::MIN / 4;

/// Dense `(m+1)×(n+1)` Levenshtein matrix over codes (row-major,
/// stride `n+1`) — the boring reference the bit-parallel step is
/// pinned to.
fn dense_edit(target: &[u8], query: &[u8]) -> Vec<u32> {
    let (n, m) = (target.len(), query.len());
    let cols = n + 1;
    let mut ed = vec![0u32; (m + 1) * cols];
    for (j, slot) in ed.iter_mut().enumerate().take(n + 1) {
        *slot = j as u32;
    }
    for i in 1..=m {
        ed[i * cols] = i as u32;
        for j in 1..=n {
            let sub = u32::from(target[j - 1] != query[i - 1]);
            ed[i * cols + j] = (ed[(i - 1) * cols + j - 1] + sub)
                .min(ed[(i - 1) * cols + j] + 1)
                .min(ed[i * cols + j - 1] + 1);
        }
    }
    ed
}

/// Best unit-cost score over the dense matrix:
/// `max_{i,j} (i + j) − 3·ED(i, j)`, floored at the origin's 0.
fn dense_unit_optimum(target: &[u8], query: &[u8]) -> i32 {
    let (n, m) = (target.len(), query.len());
    let cols = n + 1;
    let ed = dense_edit(target, query);
    let mut best = 0i32;
    for i in 0..=m {
        for j in 0..=n {
            best = best.max((i + j) as i32 - 3 * ed[i * cols + j] as i32);
        }
    }
    best
}

/// A correlated window pair: the text is the pattern with noise, so the
/// dead masks carry long live runs (the interesting regime for SENE).
fn window_pair(wlen: usize, tlen: usize, noise: f64, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pattern = random_codes(wlen, 0.45, &mut rng);
    let mut text: Vec<u8> = (0..tlen)
        .map(|i| {
            pattern
                .get(i)
                .copied()
                .unwrap_or_else(|| rng.gen_range(0..4))
        })
        .collect();
    for b in text.iter_mut() {
        if rng.gen_bool(noise) {
            *b = (*b + rng.gen_range(1..4)) & 3;
        }
    }
    (text, pattern)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// One window, every budget: the bit-parallel dead masks must equal
    /// the dense Levenshtein reference bit for bit, for every `k` the
    /// representation admits.
    #[test]
    fn window_masks_match_dense_edit_dp(
        wlen in 1usize..=64,
        extra in 0usize..80,
        noise in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        let (text, pattern) = window_pair(wlen, wlen + extra, noise, seed);
        let ed = dense_edit(&text, &pattern);
        let cols = text.len() + 1;
        let window_mask: u64 = if wlen == 64 { !0 } else { (1u64 << wlen) - 1 };
        for k in 1usize..=63 {
            let masks = window_masks(&text, &pattern, k);
            prop_assert_eq!(masks.len(), cols);
            for (j, rows) in masks.iter().enumerate() {
                prop_assert_eq!(rows.len(), k + 1);
                for (d, &row) in rows.iter().enumerate() {
                    // Beyond-window bits are always dead.
                    prop_assert_eq!(row & !window_mask, !window_mask,
                        "k={} j={} d={}: beyond bits cleared", k, j, d);
                    for b in 0..wlen {
                        let dead = (row >> b) & 1 == 1;
                        let want = ed[(b + 1) * cols + j] > d as u32;
                        prop_assert_eq!(dead, want,
                            "k={} j={} d={} b={}: dead-bit vs dense ED {}",
                            k, j, d, b, ed[(b + 1) * cols + j]);
                    }
                }
            }
        }
    }
}

/// Re-walks a script under the unit regime (self-consistency half of
/// the whole-extension property).
fn unit_walk(t: &[u8], q: &[u8], ops: &[fastz_align::EditOp]) -> (usize, usize, i32, u32) {
    use fastz_align::EditOp;
    let (mut ti, mut qi, mut score, mut edits) = (0usize, 0usize, 0i32, 0u32);
    for op in ops {
        match *op {
            EditOp::Diag(k) => {
                for _ in 0..k {
                    if t[ti] == q[qi] {
                        score += 2;
                    } else {
                        score -= 1;
                        edits += 1;
                    }
                    ti += 1;
                    qi += 1;
                }
            }
            EditOp::GapQ(k) => {
                ti += k as usize;
                score -= 2 * k as i32;
                edits += k;
            }
            EditOp::GapT(k) => {
                qi += k as usize;
                score -= 2 * k as i32;
                edits += k;
            }
        }
    }
    (ti, qi, score, edits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whole-extension score relation: the dense edit distance
    /// lower-bounds the script's edit count at the reported best cell,
    /// so the windowed engine's score never exceeds the dense unit
    /// optimum; the script itself must justify the claimed score.
    #[test]
    fn extension_score_is_bounded_by_dense_unit_optimum(
        qlen in 16usize..220,
        extra in 0usize..40,
        noise in 0.0f64..0.35,
        seed in any::<u64>(),
    ) {
        let (text, pattern) = window_pair(qlen, qlen + extra, noise, seed);
        let bv = bitvec_extend(&text, &pattern, &BitvecConfig::default());
        let (ti, qi, score, edits) = unit_walk(&text, &pattern, &bv.ops);
        prop_assert_eq!((qi, ti), (bv.best_i, bv.best_j), "script consumption");
        prop_assert_eq!(score, bv.best_score, "script score");
        prop_assert_eq!(edits, bv.edit_distance, "script edits");

        let ed = dense_edit(&text, &pattern);
        let cols = text.len() + 1;
        prop_assert!(
            bv.edit_distance >= ed[bv.best_i * cols + bv.best_j],
            "dense ED {} must lower-bound the script's {} edits",
            ed[bv.best_i * cols + bv.best_j], bv.edit_distance
        );
        prop_assert!(
            bv.best_score <= dense_unit_optimum(&text, &pattern),
            "windowed score {} above the dense unit optimum", bv.best_score
        );
    }

    /// On the single-window overlap domain (`pattern ≤ 48`,
    /// `text ≤ pattern + 56`, `k = 63`) the bound is tight: the engine
    /// must *equal* the dense unit optimum.
    #[test]
    fn single_window_extension_is_exact(
        qlen in 1usize..=48,
        extra in 0usize..=56,
        noise in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        let (text, pattern) = window_pair(qlen, qlen + extra.min(56), noise, seed);
        let cfg = BitvecConfig { window: 64, overlap: 16, k: 63, ..BitvecConfig::default() };
        let bv = bitvec_extend(&text, &pattern, &cfg);
        prop_assert_eq!(bv.best_score, dense_unit_optimum(&text, &pattern));
    }
}

/// Satellite clamp audit, mirrored at the consumer: the bitvector
/// candidate-score arithmetic routes through `score::add_clamped`, so
/// i32::MIN-adjacent operands must saturate at the engine's `NEG_INF`
/// floor and never wrap positive.
#[test]
fn candidate_score_arithmetic_saturates_near_i32_min() {
    // The exact shape the engine computes: extents + (−3·ed).
    assert_eq!(score::add_clamped(191, -3 * 63), 2);
    // An adversarial edit count large enough that the raw product
    // wraps: a penalty that comes out *positive* is exactly the bug the
    // clamp discipline exists to stop; the clamped form floors instead.
    let huge_ed = (i32::MAX / 3) + 1;
    assert!(
        huge_ed.wrapping_mul(-3) > 0,
        "raw penalty arithmetic would wrap positive"
    );
    assert_eq!(score::add_clamped(191, huge_ed.saturating_mul(-3)), NEG_INF);
    // MIN-adjacent accumulators stay floored.
    assert_eq!(score::add_clamped(i32::MIN + 100, -300), NEG_INF);
    assert_eq!(score::add_clamped(i32::MIN, i32::MIN), NEG_INF);
    assert!(score::add_clamped(i32::MIN, -1) >= NEG_INF);
    assert_eq!(score::clamp(i32::MIN + 1), NEG_INF);
}

/// Extension results can never report a score below the origin, even
/// on pure-garbage inputs where every candidate is negative — the
/// floor discipline seen end to end.
#[test]
fn garbage_extension_never_goes_negative() {
    let mut rng = SmallRng::seed_from_u64(99);
    for len in [8usize, 64, 200] {
        let t = random_codes(len, 0.5, &mut rng);
        let q: Vec<u8> = t.iter().map(|b| (b + 2) & 3).collect();
        let bv = bitvec_extend(&t, &q, &BitvecConfig::default());
        assert!(bv.best_score >= 0, "len {len}: score {}", bv.best_score);
        assert!(bv.best_score > NEG_INF);
    }
}
