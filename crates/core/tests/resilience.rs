//! Resilient-dispatch integration tests: random fault schedules must
//! never change the final deduped alignment set (exactly-once re-dispatch
//! plus the strip-width-invariant degradation ladder), retry backoff
//! must stay within its bounds, and checkpoint/resume must survive a
//! killed run.

use fastz_core::{
    run_fastz, run_fastz_multi_gpu_resilient, run_fastz_resilient, Checkpoint, FastZConfig,
    OptFlags, Partition, ResilienceConfig,
};
use fastz_genome::evolve::{generate_pair, PairParams};
use fastz_genome::{Scoring, Sequence};
use fastz_gpu_sim::{DeviceSpec, FaultPlan, FaultRates, WatchdogPolicy};
use fastz_seed::{Anchor, Workload, WorkloadParams};
use proptest::prelude::*;

fn workload(seed: u64) -> (Sequence, Sequence, Vec<Anchor>, usize) {
    let pair = generate_pair(&PairParams {
        target_len: 12_000,
        query_len: 12_000,
        segments: 24,
        ..PairParams::small_demo("res", seed)
    });
    let wl = Workload::build(
        &pair.target,
        &pair.query,
        &WorkloadParams {
            max_anchors: 200,
            ..WorkloadParams::default()
        },
    );
    let span = wl.shape.span();
    (pair.target, pair.query, wl.anchors, span)
}

fn config() -> FastZConfig {
    let mut cfg = FastZConfig::new(Scoring::bench_scaled(), DeviceSpec::rtx3080_ampere());
    cfg.flags = OptFlags::fastz();
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any random fault schedule (drill rates over every fault kind)
    /// must leave the deduped alignment set byte-identical to the
    /// fault-free run and account for every injected fault.
    #[test]
    fn random_fault_schedules_preserve_alignments(
        workload_seed in 200u64..204,
        fault_seed in any::<u64>(),
    ) {
        let (t, q, anchors, span) = workload(workload_seed);
        let cfg = config();
        let clean = run_fastz(&t, &q, &anchors, span, &cfg);
        let rcfg = ResilienceConfig::with_plan(FaultPlan::from_seed(fault_seed));
        let faulted = run_fastz_resilient(&t, &q, &anchors, span, &cfg, &rcfg);
        prop_assert_eq!(&faulted.alignments, &clean.alignments);
        prop_assert!(faulted.resilience.accounts_for_all_faults());
        prop_assert!(faulted.resilience.skipped_seeds.is_empty());
        prop_assert!(faulted.modeled_time_s >= clean.modeled_time_s);

        // Multi-GPU under the same plan: device loss re-dispatches
        // exactly once, so the set is still identical.
        let devices = vec![DeviceSpec::rtx3080_ampere(); 3];
        let multi = run_fastz_multi_gpu_resilient(
            &t, &q, &anchors, span, &cfg, &devices, Partition::Strided, &rcfg,
        );
        prop_assert_eq!(&multi.alignments, &clean.alignments);
        prop_assert!(multi.resilience.accounts_for_all_faults());
        prop_assert!(multi.lost_devices.len() < devices.len());
    }
}

#[test]
fn backoff_is_exponential_and_capped() {
    let w = WatchdogPolicy::default();
    assert_eq!(w.backoff_s(0), w.backoff_base_s);
    assert_eq!(w.backoff_s(1), 2.0 * w.backoff_base_s);
    assert_eq!(w.backoff_s(2), 4.0 * w.backoff_base_s);
    let mut prev = 0.0;
    for attempt in 0..64 {
        let b = w.backoff_s(attempt);
        assert!(b >= prev, "backoff not monotone at attempt {attempt}");
        assert!(
            b <= w.backoff_cap_s,
            "backoff above cap at attempt {attempt}"
        );
        prev = b;
    }
    assert_eq!(w.backoff_s(63), w.backoff_cap_s, "cap must be reached");
    // Watchdog deadlines scale with the kernel's expected time (which
    // scales with its bin size) above a fixed floor.
    assert!(w.deadline_s(1.0) > w.deadline_s(0.1));
    assert!(w.deadline_s(0.0) >= w.deadline_floor_s);
}

#[test]
fn adversarial_plan_skips_with_record_instead_of_panicking() {
    // Bit flips on every attempt, with max_consecutive far above the
    // retry budget: every problem climbs the whole ladder
    // (warp → scalar → skip) and the run still completes, with every
    // seed recorded as skipped and zero alignments emitted.
    let (t, q, anchors, span) = workload(210);
    let cfg = config();
    let plan = FaultPlan::from_seed(5)
        .with_rates(FaultRates {
            bit_flip: 1.0,
            ..FaultRates::NONE
        })
        .with_max_consecutive(1_000);
    let rcfg = ResilienceConfig::with_plan(plan);
    let report = run_fastz_resilient(&t, &q, &anchors, span, &cfg, &rcfg);
    assert!(
        report.alignments.is_empty(),
        "skipped seeds must not splice"
    );
    assert_eq!(report.resilience.skipped_seeds.len(), anchors.len());
    assert!(report.resilience.accounts_for_all_faults());
    assert!(
        report.resilience.fallbacks == 0,
        "no attempt survived to fall back"
    );
    assert!(report.resilience.retries > 0);
}

#[test]
fn fallback_rung_engages_between_retry_budget_and_max_consecutive() {
    // Flips stop after 3 consecutive attempts; the warp rung's budget is
    // 2, so every problem's first clean attempt (the 4th) lands on the
    // scalar rung — exercising the warp → scalar degradation while still
    // producing the fault-free alignment set.
    let (t, q, anchors, span) = workload(211);
    let cfg = config();
    let clean = run_fastz(&t, &q, &anchors, span, &cfg);
    let plan = FaultPlan::from_seed(6)
        .with_rates(FaultRates {
            bit_flip: 1.0,
            ..FaultRates::NONE
        })
        .with_max_consecutive(3);
    let rcfg = ResilienceConfig::with_plan(plan);
    let report = run_fastz_resilient(&t, &q, &anchors, span, &cfg, &rcfg);
    assert_eq!(report.alignments, clean.alignments);
    assert_eq!(
        report.resilience.fallbacks,
        report.stats.problems as u64 + report.stats.executor_problems as u64,
        "every inspector and executor problem must degrade to the scalar rung"
    );
    assert!(report.resilience.skipped_seeds.is_empty());
    assert!(report.resilience.accounts_for_all_faults());
}

#[test]
fn checkpoint_resume_survives_a_killed_run() {
    let (t, q, anchors, span) = workload(212);
    let cfg = config();
    let clean = run_fastz(&t, &q, &anchors, span, &cfg);

    let dir = std::env::temp_dir().join("fastz-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");
    let _ = std::fs::remove_file(&path);

    // First run writes checkpoints after the inspector and each bin.
    let rcfg = ResilienceConfig {
        checkpoint: Some(path.clone()),
        ..ResilienceConfig::disabled()
    };
    let first = run_fastz_resilient(&t, &q, &anchors, span, &cfg, &rcfg);
    assert_eq!(first.alignments, clean.alignments);
    assert!(first.resilience.checkpoints_written >= 2);
    assert!(!first.resilience.resumed);

    // Simulate a kill between the inspector checkpoint and the first
    // executor bin: drop every completed bin from the on-disk state.
    let mut ckpt = Checkpoint::load(&path).unwrap().unwrap();
    assert!(
        !ckpt.bins_done.is_empty(),
        "executor bins should checkpoint"
    );
    ckpt.retain_bins(0);
    ckpt.save(&path).unwrap();

    // The resumed run restores the inspector, recomputes the executor,
    // and matches the fault-free alignments.
    let resumed = run_fastz_resilient(&t, &q, &anchors, span, &cfg, &rcfg);
    assert_eq!(resumed.alignments, clean.alignments);
    assert!(resumed.resilience.resumed);
    assert!(
        resumed.resilience.restored_problems >= anchors.len() as u64 * 2,
        "at least the inspector phase must restore"
    );

    // A third run restores everything and recomputes nothing.
    let third = run_fastz_resilient(&t, &q, &anchors, span, &cfg, &rcfg);
    assert_eq!(third.alignments, clean.alignments);
    assert_eq!(
        third.resilience.restored_problems,
        (anchors.len() * 2 + third.stats.executor_problems) as u64
    );
    assert_eq!(third.resilience.checkpoints_written, 0);

    // A different workload must ignore the foreign checkpoint.
    let (t2, q2, anchors2, span2) = workload(213);
    let clean2 = run_fastz(&t2, &q2, &anchors2, span2, &cfg);
    let other = run_fastz_resilient(&t2, &q2, &anchors2, span2, &cfg, &rcfg);
    assert_eq!(other.alignments, clean2.alignments);
    assert!(!other.resilience.resumed);
    assert_eq!(other.resilience.restored_problems, 0);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_cannot_resume_across_index_versions() {
    // A checkpoint written while seeding from persistent index version A
    // must be rejected (not silently restored) when the run resumes with
    // anchors from index version B — and an in-memory run (fingerprint
    // 0) keeps its historical checkpoint identity.
    let (t, q, anchors, span) = workload(215);
    let cfg = config();
    let clean = run_fastz(&t, &q, &anchors, span, &cfg);

    let dir = std::env::temp_dir().join("fastz-index-fp-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.ckpt");
    let _ = std::fs::remove_file(&path);
    let rcfg = ResilienceConfig {
        checkpoint: Some(path.clone()),
        ..ResilienceConfig::disabled()
    };

    let cfg_a = FastZConfig {
        index_fingerprint: 0xA11CE,
        ..cfg.clone()
    };
    let first = run_fastz_resilient(&t, &q, &anchors, span, &cfg_a, &rcfg);
    assert_eq!(first.alignments, clean.alignments);
    assert!(first.resilience.checkpoints_written >= 2);

    // Same workload, same index version: restores.
    let same = run_fastz_resilient(&t, &q, &anchors, span, &cfg_a, &rcfg);
    assert!(same.resilience.resumed);

    // Same workload, different index version: rejected with a recorded
    // reason, recomputed from scratch, identical results.
    let cfg_b = FastZConfig {
        index_fingerprint: 0xB0B,
        ..cfg.clone()
    };
    let crossed = run_fastz_resilient(&t, &q, &anchors, span, &cfg_b, &rcfg);
    assert!(!crossed.resilience.resumed);
    assert_eq!(crossed.resilience.restored_problems, 0);
    assert!(
        crossed
            .resilience
            .checkpoints_rejected
            .iter()
            .any(|r| r.contains("does not match")),
        "rejection reason recorded: {:?}",
        crossed.resilience.checkpoints_rejected
    );
    assert_eq!(crossed.alignments, clean.alignments);

    // In-memory seeding (fingerprint 0) has its own identity, distinct
    // from both indexed runs.
    let in_mem = run_fastz_resilient(&t, &q, &anchors, span, &cfg, &rcfg);
    assert!(!in_mem.resilience.resumed);
    assert_eq!(in_mem.alignments, clean.alignments);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn fault_free_resilient_run_is_bit_identical_to_plain_run() {
    let (t, q, anchors, span) = workload(214);
    let cfg = config();
    let plain = run_fastz(&t, &q, &anchors, span, &cfg);
    let resilient =
        run_fastz_resilient(&t, &q, &anchors, span, &cfg, &ResilienceConfig::disabled());
    assert_eq!(plain.alignments, resilient.alignments);
    assert_eq!(plain.modeled_time_s, resilient.modeled_time_s);
    assert_eq!(plain.timeline.entries().len(), 3, "no resilience phase");
    assert_eq!(resilient.resilience.injected.total(), 0);
}
