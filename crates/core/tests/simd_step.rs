//! Differential pinning of the SIMD wavefront kernel to the
//! interpreter, per step and per engine run.
//!
//! The per-step property drives both kernels with adversarial register
//! files — values across the full engine range including exact
//! `NEG_INF` sentinels, every `[lo, hi]` lane window, thresholds from
//! prune-nothing to prune-everything — and demands whole-struct
//! equality of [`StepOut`]: S/I/D stores, packed traceback bytes, and
//! both ballots. The engine-level property then runs full extensions
//! under each backend at every strip width and compares results and
//! cell traces, so the shared bookkeeping around the kernels is pinned
//! too.

use fastz_align::DenseTrace;
use fastz_core::{step_interpreter, step_simd, OptFlags, StepIn, WarpConfig, WavefrontBackend};
use fastz_genome::evolve::random_codes;
use fastz_genome::{GapPenalties, Scoring, SubstMatrix};
use fastz_gpu_sim::{Lanes, SharedMem, WARP_SIZE};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The engine's score floor (`fastz_align::ydrop::NEG_INF`), restated
/// here so the test fails loudly if the sentinel ever moves.
const NEG_INF: i32 = i32::MIN / 4;

/// A register file with lane values across the live score range, a
/// sprinkling of exact `NEG_INF` sentinels (fresh or pruned lanes), and
/// a sprinkling of near-floor values (decayed gap chains).
fn register_file(rng: &mut SmallRng) -> Lanes<i32> {
    let mut v = [0i32; WARP_SIZE];
    for x in v.iter_mut() {
        *x = match rng.gen_range(0u8..10) {
            0..=1 => NEG_INF,
            2 => NEG_INF + rng.gen_range(0..200),
            _ => rng.gen_range(-20_000i32..=20_000),
        };
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// One wavefront step: `step_simd` must equal `step_interpreter`
    /// field for field on arbitrary register files and lane windows.
    #[test]
    fn simd_step_matches_interpreter_step(
        seed in any::<u64>(),
        lo in 0usize..WARP_SIZE,
        span in 0usize..WARP_SIZE,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let hi = (lo + span).min(WARP_SIZE - 1);

        let s_left = register_file(&mut rng);
        let i_left = register_file(&mut rng);
        let s_diag = register_file(&mut rng);
        let s_cur = register_file(&mut rng);
        let d_cur = register_file(&mut rng);
        let mut subst = [0i32; WARP_SIZE];
        let mut threshold = [0i32; WARP_SIZE];
        for l in 0..WARP_SIZE {
            subst[l] = rng.gen_range(-200i32..=200);
            // From "keep everything" through the live band to "prune
            // everything" — the dead mask must agree in all regimes.
            threshold[l] = match rng.gen_range(0u8..4) {
                0 => NEG_INF,
                1 => rng.gen_range(-25_000i32..=25_000),
                _ => rng.gen_range(-300i32..=300),
            };
        }

        let inp = StepIn {
            s_left: &s_left,
            i_left: &i_left,
            s_diag: &s_diag,
            s_cur: &s_cur,
            d_cur: &d_cur,
            subst: &subst,
            threshold: &threshold,
            so_se: -rng.gen_range(1i32..=80),
            se: -rng.gen_range(1i32..=12),
            lo,
            hi,
        };
        prop_assert_eq!(step_interpreter(&inp), step_simd(&inp));
    }
}

fn scoring() -> Scoring {
    Scoring {
        subst: SubstMatrix::match_mismatch(10, -15),
        gaps: GapPenalties::new(30, 5),
        ydrop: 120,
        xdrop: 40,
        hsp_threshold: 50,
        gapped_threshold: 50,
    }
}

/// A noisy homologous pair (same recipe as `properties.rs`).
fn homologous_pair(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let t = random_codes(len, 0.45, &mut rng);
    let mut q = t.clone();
    for b in q.iter_mut() {
        if rng.gen_bool(0.04) {
            *b = (*b + rng.gen_range(1..4)) & 3;
        }
    }
    let cut = rng.gen_range(0..q.len().saturating_sub(4).max(1));
    let indel = rng.gen_range(1..4.min(q.len() - cut).max(2));
    q.drain(cut..cut + indel);
    (t, q)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whole-engine differential run: at every strip width, the SIMD
    /// backend's extension — optimum, counters, explored extents, and
    /// the full cell trace — is bit-identical to the interpreter's.
    #[test]
    fn simd_engine_matches_interpreter_engine(
        len in 48usize..200,
        seed in any::<u64>(),
    ) {
        let (t, q) = homologous_pair(len, seed);
        for width in [1usize, 2, 8, 31, 32] {
            let run = |backend: WavefrontBackend| {
                let cfg = WarpConfig::inspector(&OptFlags::fastz())
                    .with_strip_width(width)
                    .with_backend(backend);
                let mut shared = SharedMem::new(96 * 1024);
                let mut trace = DenseTrace::default();
                let r = fastz_core::warp_extend_traced(
                    &t, &q, &scoring(), &cfg, &mut shared, &mut trace,
                );
                (r, trace)
            };
            let (a, trace_a) = run(WavefrontBackend::Interpreter);
            let (b, trace_b) = run(WavefrontBackend::Simd);
            prop_assert_eq!(
                (a.best_score, a.best_i, a.best_j),
                (b.best_score, b.best_i, b.best_j),
                "width {}: optimum diverged", width
            );
            prop_assert_eq!(a.counters, b.counters, "width {}: counters diverged", width);
            prop_assert_eq!(
                (a.explored_rows, a.explored_cols),
                (b.explored_rows, b.explored_cols),
                "width {}: explored extents diverged", width
            );
            prop_assert_eq!(&a.eager_ops, &b.eager_ops, "width {}: eager ops diverged", width);
            prop_assert_eq!(
                &trace_a.cells, &trace_b.cells,
                "width {}: cell traces diverged", width
            );
        }
    }
}
