//! Optimization flags for the Figure 9 ablation study.
//!
//! The paper evaluates FastZ by *progressively adding* optimizations to a
//! base configuration (inspector-executor + lightweight inspector +
//! length-binned load balancing). Each [`OptFlags`] preset corresponds to
//! one bar of Figure 9.

/// Which FastZ optimizations are active.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptFlags {
    /// Cyclic use-and-discard register buffering (§3.2). Off: every lane
    /// round-trips its S/I/D scores through global memory.
    pub cyclic_buffers: bool,
    /// Eager traceback for ≤16×16 alignments in the inspector (§3.1.2).
    pub eager_traceback: bool,
    /// Executor trimming to the inspector-reported optimal cell (§3.1.3).
    /// Off: the executor recomputes the full search space with traceback.
    pub executor_trimming: bool,
    /// Number of CUDA streams (§3.4); 1 disables overlap.
    pub streams: usize,
}

impl OptFlags {
    /// Figure 9 base: inspector-executor with load balancing only.
    pub fn base() -> OptFlags {
        OptFlags {
            cyclic_buffers: false,
            eager_traceback: false,
            executor_trimming: false,
            streams: 32,
        }
    }

    /// Base + cyclic use-and-discard buffers.
    pub fn with_cyclic() -> OptFlags {
        OptFlags {
            cyclic_buffers: true,
            ..OptFlags::base()
        }
    }

    /// Base + cyclic + eager traceback.
    pub fn with_eager() -> OptFlags {
        OptFlags {
            eager_traceback: true,
            ..OptFlags::with_cyclic()
        }
    }

    /// All optimizations: FastZ (base + cyclic + eager + trimming).
    pub fn fastz() -> OptFlags {
        OptFlags {
            executor_trimming: true,
            ..OptFlags::with_eager()
        }
    }

    /// FastZ restricted to a single stream (Figure 9's last bar).
    pub fn fastz_single_stream() -> OptFlags {
        OptFlags {
            streams: 1,
            ..OptFlags::fastz()
        }
    }

    /// The Figure 9 progression in plot order, with labels.
    pub fn figure9_progression() -> Vec<(&'static str, OptFlags)> {
        vec![
            ("insp-exec+loadbal", OptFlags::base()),
            ("+cyclic", OptFlags::with_cyclic()),
            ("+eager-tb", OptFlags::with_eager()),
            ("+trim (FastZ)", OptFlags::fastz()),
            ("FastZ-single-stream", OptFlags::fastz_single_stream()),
        ]
    }
}

impl Default for OptFlags {
    fn default() -> Self {
        OptFlags::fastz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progression_is_monotone_in_enabled_optimizations() {
        let steps = OptFlags::figure9_progression();
        assert_eq!(steps.len(), 5);
        let count = |f: &OptFlags| {
            [f.cyclic_buffers, f.eager_traceback, f.executor_trimming]
                .iter()
                .filter(|&&b| b)
                .count()
        };
        for w in steps.windows(2).take(3) {
            assert_eq!(count(&w[1].1), count(&w[0].1) + 1, "{}", w[1].0);
        }
        // Last bar differs only in stream count.
        assert_eq!(
            OptFlags {
                streams: 1,
                ..steps[3].1
            },
            steps[4].1
        );
    }

    #[test]
    fn default_is_full_fastz() {
        let f = OptFlags::default();
        assert!(f.cyclic_buffers && f.eager_traceback && f.executor_trimming);
        assert_eq!(f.streams, 32);
    }
}
