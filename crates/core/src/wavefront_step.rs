//! The per-step wavefront kernels: one anti-diagonal of the warp
//! engine's DP recurrence, factored out of the strip loop so the scalar
//! interpreter and the host-SIMD backend are two interchangeable
//! realizations of the *same* step.
//!
//! [`step_interpreter`] executes the 32 lanes one at a time — it is the
//! reference semantics, lifted verbatim from the engine's original lane
//! loop. [`step_simd`] computes the whole warp with 32-wide vector
//! operations from [`fastz_gpu_sim::lanes32`]. Everything stateful —
//! shuffles, traceback writes, counters, best-cell tracking, register
//! rotation, spill — stays in the engine and is shared by both
//! backends, so the two can only diverge inside this module; the
//! differential tests pin them together per step, field by field.
//!
//! Both kernels write deterministic values for inactive lanes
//! ([`NEG_INF`] stores, zero traceback bytes), so whole-struct equality
//! of [`StepOut`] is meaningful.

use fastz_align::score;
use fastz_align::ydrop::{tb, NEG_INF};
use fastz_gpu_sim::{lanes32, splat, Lanes, WARP_SIZE};

/// Inputs of one wavefront step, prepared by the engine and identical
/// for both backends.
///
/// The shuffled neighbor vectors (`s_left`, `i_left`, `s_diag`) already
/// carry the strip-boundary spill injected at lane 0; `subst` and
/// `threshold` are per-lane gathers (substitution score of the lane's
/// cell, and the order-safe pruning threshold for the lane's row) that
/// the engine performs once and feeds to whichever kernel runs.
pub struct StepIn<'a> {
    /// Left neighbor's S (shuffled up by one lane, spill-filled).
    pub s_left: &'a Lanes<i32>,
    /// Left neighbor's I (shuffled up by one lane, spill-filled).
    pub i_left: &'a Lanes<i32>,
    /// Diagonal neighbor's S (previous diagonal, shuffled, spill-filled).
    pub s_diag: &'a Lanes<i32>,
    /// Own S of the previous row (vertical dependency).
    pub s_cur: &'a Lanes<i32>,
    /// Own D of the previous row (vertical dependency).
    pub d_cur: &'a Lanes<i32>,
    /// Substitution score of each active lane's cell (undefined outside
    /// `lo..=hi`, masked by the kernels).
    pub subst: &'a Lanes<i32>,
    /// Per-lane pruning threshold: `max(lagged diagonal best, row prefix
    /// best) − ydrop` (undefined outside `lo..=hi`).
    pub threshold: &'a Lanes<i32>,
    /// Gap-open + first-extend penalty (negative).
    pub so_se: i32,
    /// Gap-extend penalty (negative).
    pub se: i32,
    /// First active lane of this step (the wavefront's trailing edge).
    pub lo: usize,
    /// Last active lane of this step; the step is empty when `lo > hi`.
    pub hi: usize,
}

/// Outputs of one wavefront step: the post-pruning register values to
/// rotate into the cyclic buffer, packed traceback bytes, and the
/// lane-activity ballots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepOut {
    /// S to store per lane (`NEG_INF` for pruned or inactive lanes).
    pub s_store: Lanes<i32>,
    /// I to store per lane (clamped; `NEG_INF` for pruned/inactive).
    pub i_store: Lanes<i32>,
    /// D to store per lane (clamped; `NEG_INF` for pruned/inactive).
    pub d_store: Lanes<i32>,
    /// Packed traceback byte per lane (0 for inactive lanes).
    pub tb: Lanes<u8>,
    /// Ballot of active lanes that survived pruning.
    pub live_mask: u32,
    /// Ballot of active lanes (bits `lo..=hi`).
    pub active_mask: u32,
}

impl StepOut {
    /// The step with no active lanes.
    fn inactive() -> StepOut {
        StepOut {
            s_store: splat(NEG_INF),
            i_store: splat(NEG_INF),
            d_store: splat(NEG_INF),
            tb: [0u8; WARP_SIZE],
            live_mask: 0,
            active_mask: 0,
        }
    }
}

/// The reference step: each lane's Gotoh recurrence, pruning decision,
/// clamped stores, and traceback byte, executed lane by lane.
pub fn step_interpreter(inp: &StepIn) -> StepOut {
    let mut out = StepOut::inactive();
    if inp.lo > inp.hi {
        return out;
    }
    for l in inp.lo..=inp.hi {
        out.active_mask |= 1 << l;

        // Affine gap recurrences. The adds stay raw (not clamped): both
        // operands sit well above i32::MIN by construction, and clamping
        // here could flip the `ext >= open` tie-break at the sentinel
        // floor, changing the extend flags in the traceback byte.
        // fastz-lint: allow(clamped-score-arith, recurrence adds stay raw
        // by the tie-break contract above; see fastz_align score docs)
        let (i_val, i_ext) = {
            let open = inp.s_left[l] + inp.so_se;
            let ext = inp.i_left[l] + inp.se;
            if ext >= open {
                (ext, true)
            } else {
                (open, false)
            }
        };
        let (d_val, d_ext) = {
            let open = inp.s_cur[l] + inp.so_se;
            let ext = inp.d_cur[l] + inp.se;
            if ext >= open {
                (ext, true)
            } else {
                (open, false)
            }
        };
        let diag_val = inp.s_diag[l] + inp.subst[l];

        // Best source, diagonal first (LASTZ's tie order).
        let mut s_val = diag_val;
        let mut s_src = tb::S_DIAG;
        if i_val > s_val {
            s_val = i_val;
            s_src = tb::S_FROM_I;
        }
        if d_val > s_val {
            s_val = d_val;
            s_src = tb::S_FROM_D;
        }

        let th = inp.threshold[l];
        let dead = s_val < th && i_val < th && d_val < th;
        let (s_store, i_store, d_store) = if dead {
            (NEG_INF, NEG_INF, NEG_INF)
        } else {
            out.live_mask |= 1 << l;
            (s_val, score::clamp(i_val), score::clamp(d_val))
        };
        out.s_store[l] = s_store;
        out.i_store[l] = i_store;
        out.d_store[l] = d_store;

        let mut byte = if dead { tb::S_ORIGIN } else { s_src };
        if i_ext {
            byte |= tb::I_EXTEND;
        }
        if d_ext {
            byte |= tb::D_EXTEND;
        }
        out.tb[l] = byte;
    }
    out
}

/// The vector step: the same recurrence as [`step_interpreter`], but the
/// S/I/D register files are 32-wide i32 vectors and every lane decision
/// is a mask (`shfl` already arrived vectorized in [`StepIn`]; ballots
/// fall out of [`lanes32::movemask`]).
pub fn step_simd(inp: &StepIn) -> StepOut {
    use lanes32 as v;
    if inp.lo > inp.hi {
        return StepOut::inactive();
    }
    let so_se = splat(inp.so_se);
    let se = splat(inp.se);

    // I / D: open-vs-extend with the same `ext >= open` tie-break; the
    // ge masks double as the extend flags of the traceback byte.
    let open_i = v::add(inp.s_left, &so_se);
    let ext_i = v::add(inp.i_left, &se);
    let m_i_ext = v::ge(&ext_i, &open_i);
    let i_val = v::select(&m_i_ext, &ext_i, &open_i);

    let open_d = v::add(inp.s_cur, &so_se);
    let ext_d = v::add(inp.d_cur, &se);
    let m_d_ext = v::ge(&ext_d, &open_d);
    let d_val = v::select(&m_d_ext, &ext_d, &open_d);

    let diag = v::add(inp.s_diag, inp.subst);

    // Best source, diagonal first: two strict-greater selects reproduce
    // the interpreter's priority chain exactly.
    let m_from_i = v::gt(&i_val, &diag);
    let s_after_i = v::select(&m_from_i, &i_val, &diag);
    let m_from_d = v::gt(&d_val, &s_after_i);
    let s_val = v::select(&m_from_d, &d_val, &s_after_i);
    let src = v::select(
        &m_from_d,
        &splat(tb::S_FROM_D as i32),
        &v::select(
            &m_from_i,
            &splat(tb::S_FROM_I as i32),
            &splat(tb::S_DIAG as i32),
        ),
    );

    // Prune: dead iff all three values fall below the lane's threshold.
    let dead = v::and(
        &v::and(&v::lt(&s_val, inp.threshold), &v::lt(&i_val, inp.threshold)),
        &v::lt(&d_val, inp.threshold),
    );

    // Stores: NEG_INF for pruned lanes, clamped values otherwise. The
    // max-with-splat is the vector form of `score::clamp`.
    let neg = splat(NEG_INF);
    let active = v::range_mask(inp.lo, inp.hi);
    let s_store = v::select(&dead, &neg, &s_val);
    let i_store = v::select(&dead, &neg, &v::max(&i_val, &neg));
    let d_store = v::select(&dead, &neg, &v::max(&d_val, &neg));

    // Traceback byte: source field (S_ORIGIN when pruned) OR'd with the
    // extend flags.
    let byte = v::or(
        &v::select(&dead, &splat(tb::S_ORIGIN as i32), &src),
        &v::or(
            &v::and(&m_i_ext, &splat(tb::I_EXTEND as i32)),
            &v::and(&m_d_ext, &splat(tb::D_EXTEND as i32)),
        ),
    );

    // Mask inactive lanes to the same defaults the interpreter leaves.
    let s_store = v::select(&active, &s_store, &neg);
    let i_store = v::select(&active, &i_store, &neg);
    let d_store = v::select(&active, &d_store, &neg);
    let byte = v::and(&active, &byte);

    let active_mask = v::range_bits(inp.lo, inp.hi);
    let live_mask = !v::movemask(&dead) & active_mask;

    let mut tb_bytes = [0u8; WARP_SIZE];
    for (l, b) in tb_bytes.iter_mut().enumerate() {
        *b = byte[l] as u8;
    }
    StepOut {
        s_store,
        i_store,
        d_store,
        tb: tb_bytes,
        live_mask,
        active_mask,
    }
}
