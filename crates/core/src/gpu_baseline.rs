//! The GPU baseline: Xiao/Aji/Feng-style single-problem parallelization
//! (paper §2.3, §4 "Baseline Configurations", and the barely-visible
//! first three bars of Figure 7).
//!
//! The scheme parallelizes *one* Smith-Waterman DP at a time across the
//! whole device: each anti-diagonal is partitioned over threadblocks
//! (with the Fig. 4 layout transform for coalescing), scores stored to
//! global memory (no cyclic register reuse), and a device-wide
//! synchronization separates consecutive anti-diagonals. Seed extensions
//! run back-to-back, each in its own kernel.
//!
//! With WGA's workload — millions of mostly tiny extensions — the
//! per-diagonal grid sync and per-problem launch dominate, which is why
//! the paper measures 18-43 % *slowdowns* versus sequential LASTZ.

use fastz_align::ExtensionStats;
use fastz_gpu_sim::model::CYCLES_PER_STEP;
use fastz_gpu_sim::DeviceSpec;

/// Latency between dependent anti-diagonals when the whole diagonal fits
/// in one threadblock: `__syncthreads` plus the read-after-write latency
/// of the scores just stored to global memory (no cyclic register reuse
/// in this scheme, so every diagonal's inputs come back through L2).
pub const BLOCK_SYNC_S: f64 = 5.0e-7;

/// Threads per block in the baseline scheme (one diagonal cell each).
pub const BLOCK_THREADS: usize = 1024;

/// Modeled time for one seed-extension side under the baseline scheme,
/// from the scalar engine's measured search-space statistics.
pub fn baseline_problem_time(device: &DeviceSpec, stats: &ExtensionStats) -> f64 {
    if stats.cells == 0 {
        return device.launch_overhead_s;
    }
    let clock_hz = device.clock_ghz * 1e9;
    // Anti-diagonals of the explored region.
    let diagonals = (stats.rows + stats.max_cols).saturating_sub(1).max(1) as f64;
    let mean_width = stats.cells as f64 / diagonals;
    // Narrow problems run in one block (cheap __syncthreads per diagonal
    // but a single SM); wide problems span blocks/SMs and pay the
    // device-wide sync.
    let blocks = (mean_width / BLOCK_THREADS as f64).ceil().max(1.0);
    let sync = if blocks <= 1.0 {
        BLOCK_SYNC_S
    } else {
        device.grid_sync_s
    };
    let warps_per_diag = (mean_width / 32.0).ceil().max(1.0);
    let issue = blocks.min(device.sm_count as f64) * device.warp_issue_per_sm();
    let compute_per_diag = CYCLES_PER_STEP * (warps_per_diag / issue).max(1.0) / clock_hz;
    // Memory: no cyclic reuse — every cell round-trips 12 B of scores.
    let bytes = stats.cells as f64 * 12.0;
    let memory = bytes / (device.dram_bw_gbps * 1e9);
    let compute = diagonals * (compute_per_diag + sync);
    device.launch_overhead_s + compute.max(memory)
}

/// Total baseline time over a workload of per-side search statistics.
pub fn baseline_total_time(device: &DeviceSpec, all_stats: &[ExtensionStats]) -> f64 {
    all_stats
        .iter()
        .map(|s| baseline_problem_time(device, s))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::rtx3080_ampere()
    }

    #[test]
    fn tiny_problem_is_dominated_by_sync_and_launch() {
        // 3000 cells over 119 diagonals fits one block: per-diagonal
        // block sync + the kernel launch dominate the trivial compute.
        let stats = ExtensionStats {
            cells: 3_000,
            rows: 40,
            max_cols: 80,
        };
        let t = baseline_problem_time(&dev(), &stats);
        let overhead = dev().launch_overhead_s + 119.0 * BLOCK_SYNC_S;
        assert!(t >= overhead * 0.9, "t={t}, overhead={overhead}");
        // A wide problem pays the device-wide sync instead.
        let wide = ExtensionStats {
            cells: 40_000_000,
            rows: 5_000,
            max_cols: 11_000,
        };
        let tw = baseline_problem_time(&dev(), &wide);
        assert!(tw >= 15_999.0 * dev().grid_sync_s);
    }

    #[test]
    fn empty_problem_costs_a_launch() {
        let t = baseline_problem_time(&dev(), &ExtensionStats::default());
        assert_eq!(t, dev().launch_overhead_s);
    }

    #[test]
    fn baseline_is_slower_than_a_cpu_core_on_small_problems() {
        // The paper's headline: for the real workload mix the baseline
        // LOSES to sequential LASTZ. A 3000-cell extension takes the CPU
        // ~17 µs but costs the GPU baseline ~52 µs of launch + per-
        // diagonal syncs.
        let stats = ExtensionStats {
            cells: 3_000,
            rows: 40,
            max_cols: 80,
        };
        let gpu = baseline_problem_time(&dev(), &stats);
        let cpu = fastz_gpu_sim::CpuModel::ryzen_3950x().sequential_time(3_000);
        assert!(
            gpu > 2.0 * cpu,
            "baseline {gpu} should be slower than cpu {cpu}"
        );
    }

    #[test]
    fn totals_sum() {
        let s = ExtensionStats {
            cells: 1000,
            rows: 30,
            max_cols: 40,
        };
        let one = baseline_problem_time(&dev(), &s);
        let three = baseline_total_time(&dev(), &[s, s, s]);
        assert!((three - 3.0 * one).abs() < 1e-12);
    }
}
