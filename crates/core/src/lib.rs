//! # fastz-core
//!
//! The paper's primary contribution: FastZ's inspector-executor gapped
//! seed-extension pipeline on the GPU simulator — lightweight inspector,
//! eager traceback, executor trimming, cyclic use-and-discard register
//! buffers, length-binned load balancing, and CUDA-stream scheduling —
//! plus the Feng-et-al GPU baseline and the Figure 9 ablation switches.

#![warn(missing_docs)]

pub mod ablation;
pub mod binning;
pub mod bitvec;
pub mod cost;
pub mod gpu_baseline;
pub mod layout;
pub mod multi_gpu;
pub mod pipeline;
pub mod pool;
pub mod resilient;
pub mod warp_engine;
pub mod wavefront_step;

pub use ablation::OptFlags;
pub use binning::{
    bin_allocation, classify, BinClass, BinCounts, BinPacker, LaunchDemux, MergedLaunch,
    TaggedTask, BIN_BOUNDS, BIN_SLOTS, EAGER_BOUND,
};
pub use bitvec::{
    bitvec_extend, bitvec_extend_in, prefilter_anchors, BitvecConfig, BitvecExtension,
    BitvecMutation, BitvecStats, ExtendBackend, PrefilterConfig,
};
pub use gpu_baseline::{baseline_problem_time, baseline_total_time};
pub use multi_gpu::{
    device_speed, partition_anchors, partition_anchors_sharded, rebalance_shards,
    run_fastz_multi_gpu, run_fastz_multi_gpu_resilient, straggler_index, MultiGpuReport, Partition,
    ShardSchedule, SHARD_MOVE_COST_S,
};
pub use pipeline::{
    run_fastz, run_fastz_in_pool, run_fastz_observed, run_fastz_resilient, FastZConfig,
    FastZReport, FastZStats,
};
pub use pool::{Arena, HostDispatch, HostPool, PoolStats};
pub use resilient::{
    combine_fingerprint, workload_fingerprint, Checkpoint, ResilienceConfig, ResilienceReport,
};
pub use warp_engine::{
    warp_extend, warp_extend_in, warp_extend_traced, warp_extend_traced_in, WarpConfig,
    WarpExtension, WavefrontBackend,
};
pub use wavefront_step::{step_interpreter, step_simd, StepIn, StepOut};
