//! Resilient dispatch: retry policy, degradation ladder, and
//! checkpoint/resume for the FastZ pipeline.
//!
//! The pipeline (`run_fastz`) and the multi-GPU dispatcher
//! (`run_fastz_multi_gpu`) are hardened against the fault classes the
//! simulator can inject (`fastz_gpu_sim::fault`):
//!
//! * **Kernel hangs** — a per-kernel watchdog deadline (derived from the
//!   kernel's expected time, which scales with its length bin) detects
//!   the hang; the kernel is relaunched after an exponential backoff.
//! * **Transient bit flips** — ECC detects the corrupt extension result;
//!   the attempt is discarded and the problem retried. After
//!   [`ResilienceConfig::max_problem_retries`] consecutive faults the
//!   problem **degrades** from the 32-lane warp engine to the scalar
//!   y-drop path (the same engine at strip width 1 — one lane computing
//!   one cell per step), whose results are provably identical (the
//!   strip-width-invariance property). If faults persist past
//!   [`ResilienceConfig::max_fallback_retries`] more attempts, the seed
//!   is **skipped with record** — dropped from the output and listed in
//!   [`ResilienceReport::skipped_seeds`] — rather than poisoning the run.
//! * **Stream stalls / shared-memory pressure** — absorbed as modeled
//!   latency, counted as tolerated.
//! * **Device loss** — a lost device's unfinished anchor chunks are
//!   re-dispatched round-robin to surviving devices (exactly-once:
//!   completed chunks are kept, unfinished chunks move wholesale).
//!
//! Invariant (checked by the conformance drill and a property test):
//! under any fault schedule the final deduped alignment set is
//! bit-identical to a fault-free run, and
//! `injected == detected + tolerated` fault accounting holds.
//!
//! **Checkpoint/resume**: with [`ResilienceConfig::checkpoint`] set, the
//! pipeline persists per-problem results after the inspector phase and
//! after every completed executor bin, so a killed run restarts from the
//! last completed bin instead of from scratch. The checkpoint is keyed
//! by a workload fingerprint; a stale or foreign checkpoint is ignored.
//!
//! **Interplay with the host execution pool** (`crate::pool`): resilient
//! problems run on the pool's work-stealing workers like any other task.
//! Every fault decision — the injection schedule, the retry ladder, the
//! degrade-to-scalar fallback, skip-with-record — is keyed by the
//! problem's *index* (its deterministic fault-site id), never by the
//! worker that happens to claim it, so retries and fallbacks land
//! identically for every `sim_threads` value and dispatch mode. Per-try
//! scratch lives in the claiming worker's [`crate::pool::Arena`]; a
//! retry reuses the same worker's buffers.

use crate::bitvec::BitvecStats;
use crate::pipeline::SideResult;
use fastz_align::EditOp;
use fastz_genome::{Scoring, Sequence};
use fastz_gpu_sim::{FaultCounters, FaultPlan, WarpCounters, WarpTask, WatchdogPolicy};
use fastz_seed::Anchor;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Write};
use std::path::PathBuf;

/// Resilient-dispatch configuration.
#[derive(Clone, Debug)]
pub struct ResilienceConfig {
    /// The fault schedule to run under ([`FaultPlan::none`] disables
    /// every injection probe — the fault-free fast path).
    pub plan: FaultPlan,
    /// Watchdog deadlines, backoff, and stall pricing.
    pub watchdog: WatchdogPolicy,
    /// Bit-flip retry budget on the warp rung of the ladder; the next
    /// attempt degrades to the scalar (strip-width-1) path.
    pub max_problem_retries: u32,
    /// Retry budget on the scalar rung; exhausting it skips the seed
    /// with record.
    pub max_fallback_retries: u32,
    /// Checkpoint file; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Device ordinal for fault sites (multi-GPU runs give each device
    /// its own injection coordinates).
    pub device_ord: u32,
    /// Chunks each device's anchor partition is dispatched in; the
    /// granularity at which a lost device's unfinished work re-dispatches.
    pub dispatch_chunks: usize,
}

impl ResilienceConfig {
    /// Resilience off: no fault probes, no checkpointing, zero overhead.
    pub fn disabled() -> ResilienceConfig {
        ResilienceConfig::with_plan(FaultPlan::none())
    }

    /// Default policy under `plan`.
    pub fn with_plan(plan: FaultPlan) -> ResilienceConfig {
        ResilienceConfig {
            plan,
            watchdog: WatchdogPolicy::default(),
            max_problem_retries: 2,
            max_fallback_retries: 4,
            checkpoint: None,
            device_ord: 0,
            dispatch_chunks: 2,
        }
    }

    /// True when every fault probe and the checkpoint path are off.
    pub fn is_disabled(&self) -> bool {
        self.plan.is_none() && self.checkpoint.is_none()
    }

    /// Total per-problem attempt budget before the skip rung.
    /// Saturating: adversarial configs near `u32::MAX` clamp instead of
    /// wrapping to a tiny budget (which would skip healthy problems).
    pub fn attempt_budget(&self) -> u32 {
        self.max_problem_retries
            .saturating_add(self.max_fallback_retries)
    }
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig::disabled()
    }
}

/// Structured account of everything the resilient dispatcher saw and did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResilienceReport {
    /// Every fault the plan injected.
    pub injected: FaultCounters,
    /// Faults that forced a retry, fallback, or re-dispatch (hangs,
    /// bit flips, device losses).
    pub detected: FaultCounters,
    /// Faults absorbed in place without retrying (stalls, pressure).
    pub tolerated: FaultCounters,
    /// Kernel relaunches plus problem re-runs.
    pub retries: u64,
    /// Problems degraded from the warp engine to the scalar path.
    pub fallbacks: u64,
    /// Seeds dropped by the skip-with-record rung (anchor indices).
    pub skipped_seeds: Vec<usize>,
    /// Anchors re-dispatched away from lost devices.
    pub redispatched_anchors: usize,
    /// Devices lost during the run.
    pub devices_lost: usize,
    /// Total backoff latency in modeled seconds.
    pub backoff_s: f64,
    /// Total modeled time added by fault handling.
    pub overhead_s: f64,
    /// Checkpoint files written.
    pub checkpoints_written: u64,
    /// Problems restored from a checkpoint instead of recomputed.
    pub restored_problems: u64,
    /// Whether the run resumed from an existing checkpoint.
    pub resumed: bool,
    /// Checkpoints found on disk but **not** trusted, with the reason:
    /// torn/truncated files (bad header, missing end marker, corrupt
    /// records) and foreign fingerprints land here instead of being
    /// silently ignored. The run always proceeds from scratch.
    pub checkpoints_rejected: Vec<String>,
}

impl ResilienceReport {
    /// Accounting invariant: every injected fault is either detected
    /// (and recovered from) or tolerated in place.
    pub fn accounts_for_all_faults(&self) -> bool {
        self.injected == self.detected.plus(&self.tolerated)
    }

    /// Merges another report (multi-GPU aggregation).
    pub fn merge(&mut self, other: &ResilienceReport) {
        self.injected.merge(&other.injected);
        self.detected.merge(&other.detected);
        self.tolerated.merge(&other.tolerated);
        self.retries += other.retries;
        self.fallbacks += other.fallbacks;
        self.skipped_seeds
            .extend(other.skipped_seeds.iter().copied());
        self.redispatched_anchors += other.redispatched_anchors;
        self.devices_lost += other.devices_lost;
        self.backoff_s += other.backoff_s;
        self.overhead_s += other.overhead_s;
        self.checkpoints_written += other.checkpoints_written;
        self.restored_problems += other.restored_problems;
        self.resumed |= other.resumed;
        self.checkpoints_rejected
            .extend(other.checkpoints_rejected.iter().cloned());
    }

    /// One-line human summary (CLI `--stats`).
    pub fn summary(&self) -> String {
        format!(
            "faults {} (hang {}, flip {}, stall {}, shmem {}, dev-loss {}); \
             retries {}, fallbacks {}, skipped {}, redispatched {}, \
             overhead {:.4} s",
            self.injected.total(),
            self.injected.hangs,
            self.injected.bit_flips,
            self.injected.stalls,
            self.injected.shmem_pressure,
            self.injected.device_losses,
            self.retries,
            self.fallbacks,
            self.skipped_seeds.len(),
            self.redispatched_anchors,
            self.overhead_s,
        )
    }

    /// Emits the full fault-accounting picture into `sink`: per-kind
    /// `fastz_faults_total{class,kind}` counters for all three classes
    /// (so `injected == detected + tolerated` can be asserted through
    /// the registry) plus the recovery-action counters.
    pub fn record_into<S: fastz_obs::MetricsSink>(&self, sink: &mut S) {
        use fastz_obs::names;
        self.injected.record_into(sink, "injected");
        self.detected.record_into(sink, "detected");
        self.tolerated.record_into(sink, "tolerated");
        sink.counter_add(names::RETRIES_TOTAL, self.retries);
        sink.counter_add(names::FALLBACKS_TOTAL, self.fallbacks);
        sink.counter_add(names::SKIPPED_SEEDS_TOTAL, self.skipped_seeds.len() as u64);
        sink.counter_add(names::CHECKPOINTS_WRITTEN_TOTAL, self.checkpoints_written);
        sink.counter_add(
            names::CHECKPOINTS_REJECTED_TOTAL,
            self.checkpoints_rejected.len() as u64,
        );
        sink.counter_add(names::RESTORED_PROBLEMS_TOTAL, self.restored_problems);
        sink.counter_add(
            names::REDISPATCHED_ANCHORS_TOTAL,
            self.redispatched_anchors as u64,
        );
        sink.counter_add(names::DEVICES_LOST_TOTAL, self.devices_lost as u64);
    }
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

/// FNV-1a accumulation helper.
fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Fingerprint of a pipeline workload: a checkpoint only resumes a run
/// whose inputs and configuration hash to the same value.
pub fn workload_fingerprint(
    target: &Sequence,
    query: &Sequence,
    anchors: &[Anchor],
    seed_span: usize,
    scoring: &Scoring,
    flags_bits: u64,
) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    h = fnv(h, &(target.len() as u64).to_le_bytes());
    h = fnv(h, &(query.len() as u64).to_le_bytes());
    // Sequence content sample: full hashing of chromosome-scale inputs
    // would dominate startup; 4 KiB from each end catches truncation and
    // off-by-one edits, and the anchor list pins the seed layout.
    let sample = |s: &Sequence, h: u64| {
        let c = s.codes();
        let k = c.len().min(4096);
        fnv(fnv(h, &c[..k]), &c[c.len() - k..])
    };
    h = sample(target, h);
    h = sample(query, h);
    for a in anchors {
        h = fnv(h, &a.target_pos.to_le_bytes());
        h = fnv(h, &a.query_pos.to_le_bytes());
    }
    h = fnv(h, &(seed_span as u64).to_le_bytes());
    h = fnv(h, &scoring.ydrop.to_le_bytes());
    h = fnv(h, &scoring.gapped_threshold.to_le_bytes());
    h = fnv(h, &scoring.gaps.open.to_le_bytes());
    h = fnv(h, &scoring.gaps.extend.to_le_bytes());
    h = fnv(h, &scoring.subst.max_score().to_le_bytes());
    h = fnv(h, &flags_bits.to_le_bytes());
    h
}

/// Folds an extra identity word (e.g. the persistent seed index
/// fingerprint) into a workload fingerprint. Folding zero is the
/// identity, so runs without the extra artifact keep their historical
/// fingerprints — old checkpoints stay resumable.
pub fn combine_fingerprint(fp: u64, extra: u64) -> u64 {
    if extra == 0 {
        fp
    } else {
        fnv(fp, &extra.to_le_bytes())
    }
}

/// A pipeline checkpoint: per-problem inspector results and per-bin
/// executor results, persisted after the inspector phase and after each
/// completed executor bin.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Checkpoint {
    /// The workload fingerprint this checkpoint belongs to.
    pub fingerprint: u64,
    /// Inspector results by problem index.
    pub(crate) inspector: BTreeMap<usize, SideResult>,
    /// Set once every inspector problem is recorded.
    pub inspector_done: bool,
    /// Executor results by problem index.
    pub(crate) executor: BTreeMap<usize, SideResult>,
    /// Executor bin slots whose every problem is recorded.
    pub bins_done: BTreeSet<usize>,
}

impl Checkpoint {
    /// An empty checkpoint for `fingerprint`.
    pub fn new(fingerprint: u64) -> Checkpoint {
        Checkpoint {
            fingerprint,
            ..Checkpoint::default()
        }
    }

    /// Drops executor state beyond the first `n` completed bins —
    /// recreating the on-disk state of a run killed mid-executor (ops
    /// tooling and the resume tests use this).
    pub fn retain_bins(&mut self, n: usize) {
        let keep: BTreeSet<usize> = self.bins_done.iter().copied().take(n).collect();
        self.bins_done = keep;
        // Without per-bin membership stored here, executor entries of
        // dropped bins are simply discarded along with every entry not
        // re-derivable: the pipeline re-runs any problem whose bin lacks
        // a done marker, so over-dropping is safe, under-dropping is not.
        if self.bins_done.is_empty() {
            self.executor.clear();
        }
    }

    /// Serializes to the checkpoint text format (v2).
    ///
    /// v2 ends with an `end <inspector> <executor> <bins-done>` trailer
    /// carrying the record counts. A file truncated at any point — even
    /// cleanly at a line boundary, which v1 could not detect — fails to
    /// parse instead of silently resuming from partial state.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(64 * (self.inspector.len() + self.executor.len()) + 64);
        out.push_str("fastz-checkpoint v2\n");
        out.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        for (&idx, r) in &self.inspector {
            out.push_str(&encode_side('I', idx, r));
        }
        if self.inspector_done {
            out.push_str("inspector-done\n");
        }
        for (&idx, r) in &self.executor {
            out.push_str(&encode_side('E', idx, r));
        }
        for &slot in &self.bins_done {
            out.push_str(&format!("bin-done {slot}\n"));
        }
        out.push_str(&format!(
            "end {} {} {}\n",
            self.inspector.len(),
            self.executor.len(),
            self.bins_done.len()
        ));
        out
    }

    /// Parses the checkpoint text format. Rejects torn files: the `end`
    /// trailer must be present, must be the last line, and its record
    /// counts must match what was actually parsed.
    pub fn from_text(text: &str) -> Result<Checkpoint, String> {
        let mut lines = text.lines();
        if lines.next() != Some("fastz-checkpoint v2") {
            return Err("not a fastz checkpoint (bad header)".into());
        }
        let fp_line = lines.next().ok_or("missing fingerprint")?;
        let fp = fp_line
            .strip_prefix("fingerprint ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or("bad fingerprint line")?;
        let mut ckpt = Checkpoint::new(fp);
        let mut sealed = false;
        for line in lines {
            if sealed {
                return Err("data after end trailer".into());
            }
            if line.is_empty() {
                continue;
            }
            if line == "inspector-done" {
                ckpt.inspector_done = true;
            } else if let Some(slot) = line.strip_prefix("bin-done ") {
                ckpt.bins_done
                    .insert(slot.parse().map_err(|_| "bad bin-done line")?);
            } else if let Some(rest) = line.strip_prefix("I ") {
                let (idx, r) = decode_side(rest)?;
                ckpt.inspector.insert(idx, r);
            } else if let Some(rest) = line.strip_prefix("E ") {
                let (idx, r) = decode_side(rest)?;
                ckpt.executor.insert(idx, r);
            } else if let Some(counts) = line.strip_prefix("end ") {
                let want: Vec<usize> = counts
                    .split_ascii_whitespace()
                    .map(|c| c.parse().map_err(|_| format!("bad end trailer: {line}")))
                    .collect::<Result<_, String>>()?;
                let got = [
                    ckpt.inspector.len(),
                    ckpt.executor.len(),
                    ckpt.bins_done.len(),
                ];
                if want != got {
                    return Err(format!(
                        "end trailer counts {want:?} do not match records {got:?}"
                    ));
                }
                sealed = true;
            } else {
                return Err(format!("unrecognized checkpoint line: {line}"));
            }
        }
        if !sealed {
            return Err("truncated checkpoint (missing end trailer)".into());
        }
        Ok(ckpt)
    }

    /// Writes the checkpoint crash-consistently: the bytes go to a temp
    /// file *in the same directory* (rename across filesystems is not
    /// atomic), are fsync'd so the rename can never publish a name whose
    /// data is still in the page cache, and then atomically replace
    /// `path`. A crash at any point leaves either the old checkpoint or
    /// the new one — never a torn file under the real name.
    pub fn save(&self, path: &std::path::Path) -> io::Result<()> {
        let mut name = path
            .file_name()
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "checkpoint path has no file name",
                )
            })?
            .to_os_string();
        name.push(".tmp");
        let tmp = path.with_file_name(name);
        {
            let mut f = io::BufWriter::new(std::fs::File::create(&tmp)?);
            f.write_all(self.to_text().as_bytes())?;
            f.flush()?;
            f.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads a checkpoint; `Ok(None)` when the file does not exist.
    /// Every error — IO or parse — names the offending path so rejection
    /// reports stay actionable.
    pub fn load(path: &std::path::Path) -> Result<Option<Checkpoint>, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        Checkpoint::from_text(&text)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Exact round-trip text encoding for `f64` (hex bit pattern).
fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn f64_unhex(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad f64 field {s}"))
}

/// Encodes an edit script as `D<k>`/`Q<k>`/`T<k>` runs; `.` is the empty
/// script, `-` the absent one.
pub fn encode_ops(ops: Option<&[EditOp]>) -> String {
    match ops {
        None => "-".into(),
        Some([]) => ".".into(),
        Some(ops) => {
            let mut s = String::with_capacity(ops.len() * 4);
            for op in ops {
                match *op {
                    EditOp::Diag(k) => s.push_str(&format!("D{k}")),
                    EditOp::GapQ(k) => s.push_str(&format!("Q{k}")),
                    EditOp::GapT(k) => s.push_str(&format!("T{k}")),
                }
            }
            s
        }
    }
}

/// Inverse of [`encode_ops`].
pub fn decode_ops(s: &str) -> Result<Option<Vec<EditOp>>, String> {
    match s {
        "-" => Ok(None),
        "." => Ok(Some(Vec::new())),
        _ => {
            let mut ops = Vec::new();
            let mut chars = s.chars().peekable();
            while let Some(kind) = chars.next() {
                let mut n = 0u32;
                while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(d))
                        .ok_or_else(|| format!("op run overflow in {s}"))?;
                    chars.next();
                }
                let op = match kind {
                    'D' => EditOp::Diag(n),
                    'Q' => EditOp::GapQ(n),
                    'T' => EditOp::GapT(n),
                    other => return Err(format!("bad op kind {other} in {s}")),
                };
                ops.push(op);
            }
            Ok(Some(ops))
        }
    }
}

fn encode_side(tag: char, idx: usize, r: &SideResult) -> String {
    let c = &r.counters;
    format!(
        "{tag} {idx} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
        r.score,
        r.best_i,
        r.best_j,
        r.explored_rows,
        r.explored_cols,
        f64_hex(r.task.cycles),
        f64_hex(r.task.dram_bytes),
        c.steps,
        c.cells,
        c.alu_ops,
        c.divergent_steps,
        c.global_read,
        c.global_written,
        c.shared_bytes,
        c.shuffles,
        c.scalar_ops,
        r.bitvec.windows,
        r.bitvec.sene_skips,
        r.bitvec.dent_discards,
        encode_ops(r.eager_ops.as_deref()),
    )
}

fn decode_side(rest: &str) -> Result<(usize, SideResult), String> {
    let f: Vec<&str> = rest.split_ascii_whitespace().collect();
    if f.len() != 21 {
        return Err(format!("checkpoint record has {} fields, want 21", f.len()));
    }
    let num = |i: usize| -> Result<u64, String> {
        f[i].parse().map_err(|_| format!("bad field {}", f[i]))
    };
    let idx = num(0)? as usize;
    let r = SideResult {
        score: f[1].parse().map_err(|_| format!("bad score {}", f[1]))?,
        best_i: num(2)? as usize,
        best_j: num(3)? as usize,
        explored_rows: num(4)? as usize,
        explored_cols: num(5)? as usize,
        task: WarpTask {
            cycles: f64_unhex(f[6])?,
            dram_bytes: f64_unhex(f[7])?,
        },
        counters: WarpCounters {
            steps: num(8)?,
            cells: num(9)?,
            alu_ops: num(10)?,
            divergent_steps: num(11)?,
            global_read: num(12)?,
            global_written: num(13)?,
            shared_bytes: num(14)?,
            shuffles: num(15)?,
            scalar_ops: num(16)?,
        },
        bitvec: BitvecStats {
            windows: num(17)?,
            sene_skips: num(18)?,
            dent_discards: num(19)?,
        },
        eager_ops: decode_ops(f[20])?,
    };
    Ok((idx, r))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn side(score: i32) -> SideResult {
        SideResult {
            score,
            best_i: 3,
            best_j: 4,
            explored_rows: 10,
            explored_cols: 12,
            eager_ops: Some(vec![EditOp::Diag(3), EditOp::GapQ(1), EditOp::Diag(2)]),
            task: WarpTask {
                cycles: 1234.5,
                dram_bytes: 6.25,
            },
            counters: WarpCounters {
                steps: 1,
                cells: 2,
                alu_ops: 3,
                divergent_steps: 4,
                global_read: 5,
                global_written: 6,
                shared_bytes: 7,
                shuffles: 8,
                scalar_ops: 9,
            },
            bitvec: BitvecStats {
                windows: 2,
                sene_skips: 1,
                dent_discards: 5,
            },
        }
    }

    #[test]
    fn ops_encoding_round_trips() {
        for ops in [
            None,
            Some(vec![]),
            Some(vec![EditOp::Diag(12), EditOp::GapT(3), EditOp::GapQ(400)]),
        ] {
            let text = encode_ops(ops.as_deref());
            assert_eq!(decode_ops(&text).unwrap(), ops);
        }
        assert!(decode_ops("X3").is_err());
    }

    #[test]
    fn checkpoint_round_trips_through_text_and_disk() {
        let mut ckpt = Checkpoint::new(0xdead_beef_0123_4567);
        ckpt.inspector.insert(0, side(10));
        ckpt.inspector.insert(5, side(-3));
        ckpt.inspector_done = true;
        ckpt.executor.insert(
            5,
            SideResult {
                eager_ops: None,
                ..side(77)
            },
        );
        ckpt.bins_done.insert(2);
        ckpt.bins_done.insert(4);

        let parsed = Checkpoint::from_text(&ckpt.to_text()).unwrap();
        assert_eq!(parsed, ckpt);

        let dir = std::env::temp_dir().join("fastz-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round-trip.ckpt");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap().unwrap();
        assert_eq!(loaded, ckpt);
        std::fs::remove_file(&path).unwrap();

        assert_eq!(Checkpoint::load(&dir.join("missing.ckpt")).unwrap(), None);
        assert!(Checkpoint::from_text("garbage").is_err());
    }

    #[test]
    fn truncated_checkpoints_are_detected_and_reported() {
        let mut ckpt = Checkpoint::new(0x1234);
        ckpt.inspector.insert(0, side(1));
        ckpt.inspector.insert(1, side(2));
        ckpt.inspector_done = true;
        ckpt.executor.insert(0, side(3));
        ckpt.bins_done.insert(1);
        let full = ckpt.to_text();
        assert!(full.ends_with("end 2 1 1\n"), "trailer carries counts");

        // Truncation cleanly at a line boundary (the case v1 accepted).
        let lines: Vec<&str> = full.lines().collect();
        for keep in 0..lines.len() {
            let partial = lines[..keep]
                .iter()
                .map(|l| format!("{l}\n"))
                .collect::<String>();
            assert!(
                Checkpoint::from_text(&partial).is_err(),
                "prefix of {keep} lines must be rejected"
            );
        }
        // Truncation mid-line.
        assert!(Checkpoint::from_text(&full[..full.len() - 3]).is_err());
        // Trailing garbage after the seal.
        assert!(Checkpoint::from_text(&format!("{full}bin-done 9\n")).is_err());
        // Counts that disagree with the records.
        let forged = full.replace("end 2 1 1", "end 2 1 2");
        assert!(Checkpoint::from_text(&forged)
            .unwrap_err()
            .contains("do not match"));

        // `load` names the path, so rejection reports are actionable.
        let dir = std::env::temp_dir().join("fastz-ckpt-torn-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.ckpt");
        std::fs::write(&path, &full[..full.len() - 12]).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(err.contains("torn.ckpt"), "error names the file: {err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_uses_same_directory_temp_and_replaces_atomically() {
        let dir = std::env::temp_dir().join("fastz-ckpt-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.ckpt");
        let old = Checkpoint::new(1);
        old.save(&path).unwrap();
        let new = Checkpoint::new(2);
        new.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap().unwrap().fingerprint, 2);
        assert!(
            !dir.join("atomic.ckpt.tmp").exists(),
            "temp file renamed away"
        );
        std::fs::remove_file(&path).unwrap();
        assert!(Checkpoint::new(3).save(std::path::Path::new("/")).is_err());
    }

    #[test]
    fn attempt_budget_edges() {
        let mut cfg = ResilienceConfig::disabled();
        cfg.max_problem_retries = 0;
        cfg.max_fallback_retries = 0;
        assert_eq!(cfg.attempt_budget(), 0, "0 retries: straight to skip");
        cfg.max_problem_retries = u32::MAX;
        cfg.max_fallback_retries = 0;
        assert_eq!(cfg.attempt_budget(), u32::MAX);
        cfg.max_fallback_retries = 1;
        assert_eq!(
            cfg.attempt_budget(),
            u32::MAX,
            "overflow-adjacent budgets saturate instead of wrapping to 0"
        );
        cfg.max_problem_retries = u32::MAX - 1;
        cfg.max_fallback_retries = u32::MAX - 1;
        assert_eq!(cfg.attempt_budget(), u32::MAX);
    }

    #[test]
    fn retain_bins_drops_later_executor_state() {
        let mut ckpt = Checkpoint::new(1);
        ckpt.inspector_done = true;
        ckpt.executor.insert(1, side(5));
        ckpt.bins_done.extend([1, 3, 5]);
        let mut partial = ckpt.clone();
        partial.retain_bins(1);
        assert_eq!(partial.bins_done.iter().copied().collect::<Vec<_>>(), [1]);
        partial.retain_bins(0);
        assert!(partial.bins_done.is_empty());
        assert!(
            partial.executor.is_empty(),
            "no bins done ⇒ no entries kept"
        );
        assert!(partial.inspector_done, "inspector state survives");
    }

    #[test]
    fn fingerprints_distinguish_workloads() {
        use fastz_genome::evolve::{generate_pair, PairParams};
        let pair = generate_pair(&PairParams::small_demo("fp", 1));
        let anchors = vec![Anchor {
            target_pos: 10,
            query_pos: 20,
        }];
        let sc = Scoring::bench_scaled();
        let a = workload_fingerprint(&pair.target, &pair.query, &anchors, 19, &sc, 0b111);
        let b = workload_fingerprint(&pair.target, &pair.query, &anchors, 19, &sc, 0b011);
        let c = workload_fingerprint(&pair.target, &pair.query, &anchors, 20, &sc, 0b111);
        let a2 = workload_fingerprint(&pair.target, &pair.query, &anchors, 19, &sc, 0b111);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn report_accounting_invariant() {
        let mut r = ResilienceReport::default();
        r.injected.hangs = 3;
        r.injected.stalls = 2;
        r.detected.hangs = 3;
        r.tolerated.stalls = 2;
        assert!(r.accounts_for_all_faults());
        r.injected.bit_flips = 1;
        assert!(!r.accounts_for_all_faults());
        let mut merged = ResilienceReport::default();
        merged.merge(&r);
        merged.merge(&r);
        assert_eq!(merged.injected.hangs, 6);
        assert!(merged.summary().contains("hang 6"));
    }
}
