//! Persistent work-stealing host execution pool with per-worker buffer
//! arenas.
//!
//! The pipeline's functional simulation runs one seed-extension problem
//! per task on host threads. The legacy scheme spawned a fresh thread
//! set per phase and carved the problem list into static contiguous
//! chunks — so one chunk that lands the 32768-bin alignments serialized
//! the whole phase, exactly the imbalance the paper's length binning
//! (§3.3) exists to avoid on the device. [`HostPool`] replaces that
//! with one scoped worker set per `run_fastz*` call and an atomic-index
//! dispatcher: every worker claims the next unclaimed problem, so a
//! worker that drew a long alignment simply stops claiming while the
//! others drain the rest. A claim outside the worker's home (static)
//! chunk is counted as a steal.
//!
//! Each worker owns an [`Arena`] that persists across problems *and*
//! phases: the device-sized [`SharedMem`] scratchpad, the left-side
//! reversal buffers, and one traceback matrix per executor bin slot
//! (keyed like [`crate::binning::bin_allocation`] — problems of one bin
//! have similar extents, so the buffer converges after the first lease
//! and subsequent problems reuse it without reallocating).
//!
//! # Determinism contract
//!
//! Results are returned in problem order regardless of which worker ran
//! what, every buffer handed to a problem is in the same state a fresh
//! allocation would be (cleared scratchpad, zeroed traceback cells), and
//! modeled GPU time derives from per-problem work counters alone —
//! so alignments, bin counts, and modeled time are **bit-identical**
//! for any worker count or dispatch mode. Only host wall-clock (and the
//! pool's own steal/occupancy telemetry) may change. A worker panic is
//! re-raised on the submitting thread with its original payload, so a
//! DP assertion surfaces with its message.

use crate::binning::BIN_BOUNDS;
use fastz_gpu_sim::{DeviceSpec, SanitizeReport, SharedMem};
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::Scope;

/// Number of traceback-buffer classes: one per executor bin slot
/// (slot 0 = eager-sized problems run with the flag off, then the four
/// §3.3 bins, then overflow).
pub const TB_CLASSES: usize = BIN_BOUNDS.len() + 2;

/// How a phase's problems are handed to the workers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HostDispatch {
    /// Atomic-index claiming over the problem list: idle workers pull
    /// the next unclaimed problem (work stealing). The default.
    #[default]
    Stealing,
    /// Static contiguous chunks — the legacy `run_phase` layout, kept
    /// as the baseline the `host_throughput` bench and CI gate compare
    /// against.
    Static,
}

/// Bin-class-keyed traceback matrices with reuse accounting.
///
/// Separate from [`Arena`]'s public fields so a lease can coexist with
/// mutable borrows of the scratchpad and reversal buffers.
#[derive(Debug, Default)]
pub struct TbArena {
    bufs: [Vec<u8>; TB_CLASSES],
    hits: u64,
    misses: u64,
}

impl TbArena {
    /// Leases the traceback buffer for bin `slot`, expecting roughly
    /// `cells` bytes. Counts a hit when the buffer's existing capacity
    /// already covers the request (no reallocation), a miss otherwise.
    /// The caller (the warp engine) clears and zero-fills to its exact
    /// size, so reuse is invisible to the DP.
    pub fn lease(&mut self, slot: usize, cells: usize) -> &mut Vec<u8> {
        let buf = &mut self.bufs[slot];
        if buf.capacity() >= cells {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        buf
    }

    /// Drains the (hits, misses) accumulated since the last call.
    fn take_delta(&mut self) -> (u64, u64) {
        (
            std::mem::take(&mut self.hits),
            std::mem::take(&mut self.misses),
        )
    }
}

/// Per-worker reusable buffers: everything a problem needs that the
/// legacy path allocated per problem (or per chunk).
#[derive(Debug)]
pub struct Arena {
    /// Block shared-memory scratchpad, sized from the modeled device's
    /// `shared_kib_per_sm` (cleared before every problem).
    pub shared: SharedMem,
    /// Left-side reversal scratch (target, query), reused across
    /// problems — `side_slices` clears before filling.
    pub rev: (Vec<u8>, Vec<u8>),
    /// Throwaway traceback scratch for phases that record nothing (the
    /// inspector); stays empty.
    pub scratch: Vec<u8>,
    /// Executor traceback matrices keyed by bin slot.
    pub tb: TbArena,
}

impl Arena {
    /// A fresh arena for the given device.
    pub fn for_device(device: &DeviceSpec) -> Arena {
        Arena {
            shared: SharedMem::for_device(device),
            rev: (Vec::new(), Vec::new()),
            scratch: Vec::new(),
            tb: TbArena::default(),
        }
    }
}

/// Snapshot of the pool's telemetry counters.
///
/// `tasks`, `phases`, and the arena counters are deterministic for a
/// fixed workload at one worker; `steals` and `busy_turns` depend on
/// scheduling once more than one worker runs (which is why the obs
/// golden workload pins `sim_threads = 1`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Phases (non-empty `run` calls) dispatched.
    pub phases: u64,
    /// Problems executed.
    pub tasks: u64,
    /// Claims outside the claiming worker's home chunk.
    pub steals: u64,
    /// Worker-phase participations that ran at least one task.
    pub busy_turns: u64,
    /// Traceback leases served from an already-large-enough buffer.
    pub tb_hits: u64,
    /// Traceback leases that had to grow the buffer.
    pub tb_misses: u64,
}

impl PoolStats {
    /// Fraction of worker-phase slots that did useful work, in [0, 1]
    /// (1.0 when every worker found at least one task every phase).
    pub fn occupancy(&self) -> f64 {
        let slots = self.workers as u64 * self.phases;
        if slots == 0 {
            0.0
        } else {
            self.busy_turns as f64 / slots as f64
        }
    }
}

/// One dispatched phase: a type-erased task closure plus its extent.
///
/// The raw pointer's lifetime is erased; safety rests on [`HostPool::run`]
/// blocking until every worker has left the job, so the closure outlives
/// all uses.
#[derive(Clone, Copy)]
struct ErasedJob {
    call: *const (dyn Fn(usize, &mut Arena) + Sync),
    n: usize,
}

// SAFETY: the pointee is `Sync` and only dereferenced while the
// submitting thread keeps the closure alive (see `ErasedJob` docs).
unsafe impl Send for ErasedJob {}

struct JobState {
    /// Monotone job counter; workers run a job exactly once.
    epoch: u64,
    job: Option<ErasedJob>,
    /// Workers still inside the current job.
    active: usize,
    /// First panic payload captured this job.
    panic: Option<Box<dyn Any + Send + 'static>>,
    shutdown: bool,
}

#[derive(Default)]
struct PoolCounters {
    phases: AtomicU64,
    tasks: AtomicU64,
    steals: AtomicU64,
    busy_turns: AtomicU64,
    tb_hits: AtomicU64,
    tb_misses: AtomicU64,
}

struct PoolShared {
    state: Mutex<JobState>,
    /// Workers wait here for the next job (or shutdown).
    job_cv: Condvar,
    /// The submitter waits here for `active` to reach zero.
    done_cv: Condvar,
    /// Next unclaimed problem index of the current job.
    next: AtomicUsize,
    /// Set on the first panic; stops further claims in both modes.
    abort: AtomicBool,
    counters: PoolCounters,
    /// Sanitizer findings merged from per-worker arenas at job end.
    /// Worker arrival order is nondeterministic; `sanitize_report`
    /// sorts before exposing, so the published report is invariant
    /// across worker counts and dispatch modes.
    sanitize: Mutex<SanitizeReport>,
}

/// The persistent host execution pool. One per `run_fastz*` call,
/// scoped so workers are joined when the run returns.
pub struct HostPool<'scope> {
    shared: Arc<PoolShared>,
    workers: usize,
    mode: HostDispatch,
    sanitizing: bool,
    _scope: std::marker::PhantomData<&'scope ()>,
}

impl<'scope> HostPool<'scope> {
    /// Spawns `workers` persistent worker threads (clamped to ≥ 1) into
    /// `scope`, each owning an [`Arena`] sized for `device`. With
    /// `sanitize` set, every worker arena's scratchpad carries a shadow
    /// sanitizer whose findings are drained into the pool-level report
    /// at each job end.
    pub fn new<'env>(
        scope: &'scope Scope<'scope, 'env>,
        workers: usize,
        device: &DeviceSpec,
        mode: HostDispatch,
        sanitize: bool,
    ) -> HostPool<'scope> {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(JobState {
                epoch: 0,
                job: None,
                active: 0,
                panic: None,
                shutdown: false,
            }),
            job_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            counters: PoolCounters::default(),
            sanitize: Mutex::new(SanitizeReport::default()),
        });
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            let device = device.clone();
            scope.spawn(move || worker_loop(w, workers, mode, sanitize, &device, &shared));
        }
        HostPool {
            shared,
            workers,
            mode,
            sanitizing: sanitize,
            _scope: std::marker::PhantomData,
        }
    }

    /// The merged sanitizer report, sorted into canonical order, or
    /// `None` when the pool was built without sanitizing. Call after
    /// the jobs of interest completed (`run` blocks until workers have
    /// drained their arenas).
    pub fn sanitize_report(&self) -> Option<SanitizeReport> {
        if !self.sanitizing {
            return None;
        }
        let mut rep = self.shared.sanitize.lock().unwrap().clone();
        rep.sort();
        Some(rep)
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The dispatch mode the pool was built with.
    pub fn mode(&self) -> HostDispatch {
        self.mode
    }

    /// Runs `work` over problems `0..n` on the worker set and returns
    /// the results in problem order. Blocks until the phase completes.
    /// A worker panic is re-raised here with its original payload.
    pub fn run<R, F>(&self, n: usize, work: F) -> Vec<R>
    where
        R: Send + Sync,
        F: Fn(usize, &mut Arena) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
        let slots_ref = &slots;
        let job = move |i: usize, arena: &mut Arena| {
            let r = work(i, arena);
            // A problem index is claimed exactly once, so the slot is
            // always empty here.
            let _ = slots_ref[i].set(r);
        };
        self.submit(n, &job);
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("worker completed every claimed task"))
            .collect()
    }

    /// Dispatches one erased job and waits for completion.
    fn submit(&self, n: usize, job: &(dyn Fn(usize, &mut Arena) + Sync)) {
        // SAFETY: erase the closure's lifetime; `submit` does not return
        // until every worker has decremented `active`, i.e. no worker
        // holds the pointer afterwards.
        let call: *const (dyn Fn(usize, &mut Arena) + Sync) = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize, &mut Arena) + Sync + '_),
                *const (dyn Fn(usize, &mut Arena) + Sync + 'static),
            >(job)
        };
        let mut st = self.shared.state.lock().unwrap();
        // `next`/`abort` are reset under the lock so every worker that
        // observes the new epoch (also under the lock) sees them fresh.
        self.shared.next.store(0, Ordering::Relaxed);
        self.shared.abort.store(false, Ordering::Relaxed);
        st.job = Some(ErasedJob { call, n });
        st.epoch += 1;
        st.active = self.workers;
        self.shared.counters.phases.fetch_add(1, Ordering::Relaxed);
        self.shared.job_cv.notify_all();
        while st.active > 0 {
            st = self.shared.done_cv.wait(st).unwrap();
        }
        st.job = None;
        let panic = st.panic.take();
        drop(st);
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }

    /// Snapshot of the telemetry counters (consistent after the last
    /// `run` returns; workers merge their local tallies at job exit).
    pub fn stats(&self) -> PoolStats {
        let c = &self.shared.counters;
        PoolStats {
            workers: self.workers,
            phases: c.phases.load(Ordering::Relaxed),
            tasks: c.tasks.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            busy_turns: c.busy_turns.load(Ordering::Relaxed),
            tb_hits: c.tb_hits.load(Ordering::Relaxed),
            tb_misses: c.tb_misses.load(Ordering::Relaxed),
        }
    }
}

impl Drop for HostPool<'_> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap();
        st.shutdown = true;
        self.shared.job_cv.notify_all();
        // The enclosing `std::thread::scope` joins the workers.
    }
}

/// The worker body: wait for a job, drain claims, merge telemetry,
/// signal completion; repeat until shutdown.
fn worker_loop(
    ordinal: usize,
    workers: usize,
    mode: HostDispatch,
    sanitize: bool,
    device: &DeviceSpec,
    shared: &PoolShared,
) {
    let mut arena = Arena::for_device(device);
    if sanitize {
        arena.shared.attach_sanitizer();
    }
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                match st.job {
                    Some(job) if st.epoch > seen_epoch => {
                        seen_epoch = st.epoch;
                        break job;
                    }
                    _ => {}
                }
                st = shared.job_cv.wait(st).unwrap();
            }
        };

        // Home chunk: the range static dispatch would assign this worker
        // (also the steal-accounting baseline for the stealing mode).
        let chunk = job.n.div_ceil(workers);
        let home_lo = (ordinal * chunk).min(job.n);
        let home_hi = ((ordinal + 1) * chunk).min(job.n);
        // SAFETY: the submitter keeps the closure alive until every
        // worker decrements `active` below.
        let call = unsafe { &*job.call };
        let mut tasks = 0u64;
        let mut steals = 0u64;

        let run_one = |i: usize, arena: &mut Arena| -> bool {
            arena.shared.clear();
            match catch_unwind(AssertUnwindSafe(|| call(i, arena))) {
                Ok(()) => true,
                Err(payload) => {
                    shared.abort.store(true, Ordering::Relaxed);
                    let mut st = shared.state.lock().unwrap();
                    if st.panic.is_none() {
                        st.panic = Some(payload);
                    }
                    false
                }
            }
        };

        match mode {
            HostDispatch::Stealing => loop {
                if shared.abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = shared.next.fetch_add(1, Ordering::Relaxed);
                if i >= job.n {
                    break;
                }
                if i < home_lo || i >= home_hi {
                    steals += 1;
                }
                tasks += 1;
                if !run_one(i, &mut arena) {
                    break;
                }
            },
            HostDispatch::Static => {
                for i in home_lo..home_hi {
                    if shared.abort.load(Ordering::Relaxed) {
                        break;
                    }
                    tasks += 1;
                    if !run_one(i, &mut arena) {
                        break;
                    }
                }
            }
        }

        let c = &shared.counters;
        c.tasks.fetch_add(tasks, Ordering::Relaxed);
        c.steals.fetch_add(steals, Ordering::Relaxed);
        if tasks > 0 {
            c.busy_turns.fetch_add(1, Ordering::Relaxed);
        }
        let (hits, misses) = arena.tb.take_delta();
        c.tb_hits.fetch_add(hits, Ordering::Relaxed);
        c.tb_misses.fetch_add(misses, Ordering::Relaxed);
        if let Some(rep) = arena.shared.take_sanitize_report() {
            shared.sanitize.lock().unwrap().merge(&rep);
        }

        let mut st = shared.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Convenience: build a pool inside a fresh thread scope and run `body`
/// with it. Workers are joined before this returns.
pub fn with_pool<R>(
    workers: usize,
    device: &DeviceSpec,
    mode: HostDispatch,
    body: impl FnOnce(&HostPool<'_>) -> R,
) -> R {
    std::thread::scope(|scope| {
        let pool = HostPool::new(scope, workers, device, mode, false);
        body(&pool)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::rtx3080_ampere()
    }

    #[test]
    fn results_are_order_preserved_for_any_worker_count() {
        for mode in [HostDispatch::Stealing, HostDispatch::Static] {
            for workers in [1, 2, 3, 7, 16] {
                let out = with_pool(workers, &device(), mode, |pool| pool.run(100, |i, _| i * i));
                assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn pool_survives_multiple_phases_and_empty_phases() {
        with_pool(4, &device(), HostDispatch::Stealing, |pool| {
            assert_eq!(pool.run(0, |i, _| i), Vec::<usize>::new());
            for round in 0..5usize {
                let out = pool.run(17, move |i, _| i + round);
                assert_eq!(out, (0..17).map(|i| i + round).collect::<Vec<_>>());
            }
            let s = pool.stats();
            assert_eq!(s.phases, 5, "empty phases are not dispatched");
            assert_eq!(s.tasks, 5 * 17);
        });
    }

    #[test]
    fn single_worker_claims_everything_without_steals() {
        with_pool(1, &device(), HostDispatch::Stealing, |pool| {
            pool.run(50, |i, _| i);
            let s = pool.stats();
            assert_eq!(s.tasks, 50);
            assert_eq!(s.steals, 0, "one worker's home chunk is the whole list");
            assert_eq!(s.busy_turns, 1);
            assert!((s.occupancy() - 1.0).abs() < 1e-12);
        });
    }

    #[test]
    fn static_mode_never_steals() {
        with_pool(4, &device(), HostDispatch::Static, |pool| {
            pool.run(100, |i, _| i);
            assert_eq!(pool.stats().steals, 0);
        });
    }

    #[test]
    fn imbalance_triggers_steals() {
        // Problem 0 is long; with stealing, other workers drain the rest
        // while worker 0 is busy, which necessarily crosses home-chunk
        // boundaries.
        with_pool(4, &device(), HostDispatch::Stealing, |pool| {
            pool.run(64, |i, _| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                i
            });
            let s = pool.stats();
            assert_eq!(s.tasks, 64);
            assert!(s.steals > 0, "no steals on a sleeping head task");
        });
    }

    #[test]
    fn worker_panic_propagates_its_original_payload() {
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            with_pool(3, &device(), HostDispatch::Stealing, |pool| {
                pool.run(10, |i, _| {
                    if i == 4 {
                        panic!("DP assertion failed at problem {i}");
                    }
                    i
                })
            });
        }))
        .expect_err("the worker panic must surface");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("payload keeps its message");
        assert_eq!(msg, "DP assertion failed at problem 4");
    }

    #[test]
    fn pool_is_reusable_after_a_panicked_phase() {
        with_pool(2, &device(), HostDispatch::Stealing, |pool| {
            let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(8, |i, _| {
                    if i == 0 {
                        panic!("boom");
                    }
                    i
                })
            }));
            assert!(r.is_err());
            let out = pool.run(8, |i, _| i);
            assert_eq!(out, (0..8).collect::<Vec<_>>());
        });
    }

    #[test]
    fn arena_shared_capacity_tracks_device() {
        with_pool(2, &device(), HostDispatch::Stealing, |pool| {
            let caps = pool.run(4, |_, arena| arena.shared.capacity());
            assert!(caps.iter().all(|&c| c == 128 * 1024));
        });
    }

    #[test]
    fn arena_scratchpad_is_cleared_between_problems() {
        with_pool(1, &device(), HostDispatch::Stealing, |pool| {
            let reads = pool.run(3, |i, arena| {
                let stale = arena.shared.read_u8(0);
                arena.shared.write_u8(0, 0xA0 | i as u8);
                stale
            });
            assert_eq!(reads, vec![0, 0, 0], "stale bytes leaked across problems");
        });
    }

    #[test]
    fn traceback_leases_hit_after_first_miss() {
        with_pool(1, &device(), HostDispatch::Stealing, |pool| {
            pool.run(6, |i, arena| {
                let buf = arena.tb.lease(2, 1024);
                if buf.capacity() < 1024 {
                    buf.reserve(1024);
                }
                buf.clear();
                buf.resize(1024, 0);
                i
            });
            let s = pool.stats();
            assert_eq!(s.tb_misses, 1, "only the first lease allocates");
            assert_eq!(s.tb_hits, 5);
        });
    }

    #[test]
    fn stats_occupancy_counts_idle_workers() {
        // 16 workers, 2 tasks: at most 2 can be busy.
        with_pool(16, &device(), HostDispatch::Stealing, |pool| {
            pool.run(2, |i, _| i);
            let s = pool.stats();
            assert!(s.busy_turns >= 1 && s.busy_turns <= 2);
            assert!(s.occupancy() <= 2.0 / 16.0 + 1e-12);
        });
    }

    #[test]
    fn unsanitized_pool_reports_none() {
        with_pool(2, &device(), HostDispatch::Stealing, |pool| {
            pool.run(8, |_, arena| {
                arena.shared.write_u8(0, 1);
            });
            assert!(pool.sanitize_report().is_none());
        });
    }

    #[test]
    fn sanitized_pool_report_is_invariant_across_worker_counts() {
        // Each problem plants one uninit read with its own problem id;
        // the merged, sorted report must be identical whether one
        // worker ran everything or four raced for the claims.
        let run = |workers: usize| {
            std::thread::scope(|scope| {
                let pool = HostPool::new(scope, workers, &device(), HostDispatch::Stealing, true);
                pool.run(16, |i, arena| {
                    arena.shared.sanitize_context("inspector", i as u64);
                    arena.shared.reserve(8);
                    let _ = arena.shared.read_u8(i % 8); // reserved, never written
                });
                pool.sanitize_report()
                    .expect("sanitizing pool yields a report")
            })
        };
        let solo = run(1);
        assert_eq!(solo.total_findings(), 16);
        assert_eq!(solo.findings.len(), 16);
        for f in &solo.findings {
            assert_eq!(f.kind, fastz_gpu_sim::FindingKind::UninitRead);
        }
        let racy = run(4);
        assert_eq!(solo, racy, "sorted reports must not depend on scheduling");
    }

    #[test]
    fn sanitized_pool_is_clean_on_well_behaved_work() {
        std::thread::scope(|scope| {
            let pool = HostPool::new(scope, 3, &device(), HostDispatch::Static, true);
            pool.run(12, |i, arena| {
                arena.shared.sanitize_context("executor", i as u64);
                arena.shared.write_u8(4, i as u8);
                assert_eq!(arena.shared.read_u8(4), i as u8);
            });
            let rep = pool.sanitize_report().expect("report");
            assert!(rep.is_clean(), "findings: {:?}", rep.findings);
            assert_eq!(rep.shared_writes, 12);
            assert_eq!(rep.shared_reads, 12);
            // run_one clears the arena before every problem.
            assert_eq!(rep.clears, 12);
        });
    }
}
