//! Multi-GPU FastZ (the paper's §6 "Multi-GPU/node extension",
//! deferred there as future work and implemented here).
//!
//! Seeds partition trivially across devices: each GPU runs the complete
//! inspector-executor pipeline on its share of the anchors, and the host
//! concatenates the alignments. Two partitioning policies are provided:
//!
//! * [`Partition::Block`] — contiguous anchor ranges (minimal host
//!   bookkeeping, but conserved regions cluster, so one device can
//!   inherit most of the long alignments);
//! * [`Partition::Strided`] — round-robin (spreads the long-alignment
//!   tail across devices; the better default, mirroring the multicore
//!   driver's layout).
//!
//! The modeled wall time is the slowest device's pipeline time plus a
//! host-side scatter/gather term; results are identical to a single-GPU
//! run by construction (asserted in tests).

use crate::pipeline::{run_fastz_resilient, FastZConfig, FastZReport};
use crate::resilient::{ResilienceConfig, ResilienceReport};
use fastz_align::{dedupe_alignments, Alignment};
use fastz_genome::Sequence;
use fastz_gpu_sim::fault::{scope, FaultKind, FaultSite};
use fastz_gpu_sim::{DeviceSpec, PhaseTimeline};
use fastz_seed::Anchor;

/// Anchor partitioning policy across devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partition {
    /// Contiguous blocks of the anchor list.
    Block,
    /// Round-robin striding (default).
    Strided,
}

/// Per-host-side cost of scattering anchors / gathering alignments, per
/// device (PCIe setup plus result copy).
pub const HOST_SCATTER_GATHER_S: f64 = 2.0e-4;

/// Result of a multi-GPU run.
#[derive(Clone, Debug)]
pub struct MultiGpuReport {
    /// Concatenated, deduplicated alignments (identical to a single-GPU
    /// run over the full anchor list).
    pub alignments: Vec<Alignment>,
    /// Per-device reports, in device order.
    pub per_device: Vec<FastZReport>,
    /// Modeled wall time: slowest device + host scatter/gather.
    pub modeled_time_s: f64,
    /// Slowest device index (the straggler).
    pub straggler: usize,
    /// Partitioning policy used.
    pub partition: Partition,
    /// Aggregated fault accounting across all devices, including
    /// device-loss re-dispatch (all zeros on a fault-free run).
    pub resilience: ResilienceReport,
    /// Devices lost mid-run (their unfinished anchors were re-dispatched
    /// to the survivors).
    pub lost_devices: Vec<usize>,
}

impl MultiGpuReport {
    /// Parallel efficiency versus a single device of the same type:
    /// `t_single / (n · t_multi)`.
    pub fn efficiency(&self, single_device_time_s: f64) -> f64 {
        let n = self.per_device.len() as f64;
        single_device_time_s / (n * self.modeled_time_s)
    }

    /// The combined phase timeline of the straggler (what bounds the run).
    pub fn straggler_timeline(&self) -> &PhaseTimeline {
        &self.per_device[self.straggler].timeline
    }

    /// Emits the multi-GPU summary into `sink`: per-device modeled
    /// seconds, the straggler ordinal, end-to-end modeled time, alignment
    /// count, and the aggregated fault accounting. Hand this a fresh
    /// sink — the aggregated resilience counters would double-count on
    /// top of per-device pipeline emissions.
    pub fn record_metrics<S: fastz_obs::MetricsSink>(&self, sink: &mut S) {
        use fastz_obs::names;
        for (ord, dev) in self.per_device.iter().enumerate() {
            sink.gauge_set(
                &fastz_obs::metrics::labeled(
                    names::DEVICE_MODELED_SECONDS,
                    "device",
                    &ord.to_string(),
                ),
                dev.modeled_time_s,
            );
        }
        sink.gauge_set(names::STRAGGLER_DEVICE, self.straggler as f64);
        sink.gauge_set(names::MODELED_TIME_SECONDS, self.modeled_time_s);
        sink.counter_add(names::ALIGNMENTS_TOTAL, self.alignments.len() as u64);
        self.resilience.record_into(sink);
    }
}

/// Index of the largest modeled time under [`f64::total_cmp`] — the
/// straggler ranking. `total_cmp` gives NaN a defined order (positive
/// NaN sorts greatest), so a degenerate custom [`DeviceSpec`] — e.g.
/// zero bandwidth or a zero clock, whose modeled times go infinite or
/// NaN — ranks deterministically instead of panicking the way
/// `partial_cmp().unwrap()` did. Ties keep the last index, matching the
/// old comparator on finite input.
///
/// # Panics
/// Panics on an empty iterator (the device list is never empty here).
pub fn straggler_index(times: impl Iterator<Item = f64>) -> usize {
    times
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one device")
        .0
}

/// Modeled cost of migrating one resident index shard onto a device it
/// is not already resident on (PCIe transfer + table install). The
/// rebalancer charges it per placement, which is what makes locality
/// matter: a shard stays put unless moving it buys more than this.
pub const SHARD_MOVE_COST_S: f64 = 5.0e-4;

/// A shard-to-device placement decided by [`rebalance_shards`].
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSchedule {
    /// `assignments[s]` is the device shard `s` runs on.
    pub assignments: Vec<usize>,
    /// Modeled completion time per device under the placement (work
    /// scaled by device speed, plus move costs).
    pub device_load_s: Vec<f64>,
    /// The straggler device's completion time (the fleet finishes when
    /// its slowest member does).
    pub makespan_s: f64,
    /// The straggler device under the placement.
    pub straggler: usize,
    /// Shards that stayed on the device they were already resident on.
    pub reused: usize,
    /// Shards placed on a device they were not resident on (cold loads
    /// and migrations — each paid [`SHARD_MOVE_COST_S`]).
    pub moved: usize,
}

/// A device's relative throughput for seeding work, derived from its
/// spec: lanes × clock × issue efficiency, normalized so the reference
/// Ampere part is ~1. Degenerate custom specs (zero clock) yield 0.0,
/// which the rebalancer treats as "effectively unusable" rather than
/// panicking — the same philosophy as [`straggler_index`].
pub fn device_speed(spec: &DeviceSpec) -> f64 {
    let raw =
        spec.sm_count as f64 * spec.lanes_per_sm as f64 * spec.clock_ghz * spec.issue_efficiency;
    // RTX 3080 Ampere: 68 SMs × 128 lanes × 1.71 GHz × 0.294 issue eff.
    let reference = 68.0 * 128.0 * 1.71 * 0.294;
    raw / reference
}

/// Locality-aware shard rebalancer: the `total_cmp` straggler ranking
/// grown into a placement policy.
///
/// Assigns each shard (with modeled load `shard_loads[s]` seconds on a
/// unit-speed device) to one of `device_speeds.len()` devices using
/// longest-processing-time greedy: shards are placed heaviest-first,
/// each onto the device whose completion time after taking it is
/// smallest. A shard already resident on a device (per `residency`)
/// runs there free of the [`SHARD_MOVE_COST_S`] migration charge, so
/// placements prefer residency unless the load imbalance it causes
/// outweighs the move — that is the locality/balance trade SaLoBa makes.
///
/// All comparisons use `f64::total_cmp`, so NaN/infinite loads (a
/// degenerate device model) order deterministically instead of
/// panicking; ties prefer the lower device index. An empty device list
/// clamps to one unit-speed device, mirroring `partition_anchors`.
pub fn rebalance_shards(
    shard_loads: &[f64],
    device_speeds: &[f64],
    residency: &[Option<usize>],
) -> ShardSchedule {
    let fallback = [1.0f64];
    let speeds: &[f64] = if device_speeds.is_empty() {
        &fallback
    } else {
        device_speeds
    };
    let n_dev = speeds.len();
    // Heaviest shard first; ties keep the lower shard id so the
    // schedule is deterministic under equal loads.
    let mut order: Vec<usize> = (0..shard_loads.len()).collect();
    order.sort_by(|&a, &b| shard_loads[b].total_cmp(&shard_loads[a]).then(a.cmp(&b)));

    let mut assignments = vec![0usize; shard_loads.len()];
    let mut device_load_s = vec![0.0f64; n_dev];
    let mut reused = 0usize;
    let mut moved = 0usize;
    for &s in &order {
        let home = residency.get(s).copied().flatten().filter(|&d| d < n_dev);
        let mut best = 0usize;
        let mut best_t = f64::INFINITY;
        for (d, &speed) in speeds.iter().enumerate() {
            let scaled = if speed > 0.0 {
                shard_loads[s] / speed
            } else {
                f64::INFINITY
            };
            let move_cost = if home == Some(d) {
                0.0
            } else {
                SHARD_MOVE_COST_S
            };
            let t = device_load_s[d] + scaled + move_cost;
            if d == 0 || t.total_cmp(&best_t).is_lt() {
                best = d;
                best_t = t;
            }
        }
        assignments[s] = best;
        device_load_s[best] = best_t;
        if home == Some(best) {
            reused += 1;
        } else {
            moved += 1;
        }
    }

    let straggler = if n_dev == 0 {
        0
    } else {
        straggler_index(device_load_s.iter().copied())
    };
    let makespan_s = device_load_s.get(straggler).copied().unwrap_or(0.0);
    ShardSchedule {
        assignments,
        device_load_s,
        makespan_s,
        straggler,
        reused,
        moved,
    }
}

/// Splits `anchors` across devices by target-interval shard: each
/// anchor belongs to the shard whose window interval `[lo, hi)`
/// contains its `target_pos`, and lands on that shard's assigned
/// device. Order within a device follows the input order, so the union
/// over devices is exactly the input anchor set — shard-local placement
/// never changes what gets aligned, only where.
///
/// `bounds` must be ordered and disjoint (the
/// `ShardedSeedIndex::shard_bounds` layout); anchors past the last
/// bound (possible only with mismatched inputs) go to the last shard's
/// device rather than being dropped.
pub fn partition_anchors_sharded(
    anchors: &[Anchor],
    bounds: &[(u64, u64)],
    schedule: &ShardSchedule,
    n_devices: usize,
) -> Vec<Vec<Anchor>> {
    let n_devices = n_devices.max(1);
    let mut parts = vec![Vec::new(); n_devices];
    if bounds.is_empty() {
        parts[0].extend(anchors.iter().copied());
        return parts;
    }
    for &a in anchors {
        let pos = a.target_pos as u64;
        // Binary search over the ordered interval starts.
        let shard = match bounds.binary_search_by(|&(lo, _)| lo.cmp(&pos)) {
            Ok(s) => s,
            Err(0) => 0,
            Err(ins) => ins - 1,
        };
        let dev = schedule
            .assignments
            .get(shard)
            .copied()
            .unwrap_or(0)
            .min(n_devices - 1);
        parts[dev].push(a);
    }
    parts
}

/// Splits `anchors` across `n` partitions under `policy`.
///
/// `n == 0` is a caller configuration bug, not a reason to bring a long
/// run down: it clamps to one partition.
pub fn partition_anchors(anchors: &[Anchor], n: usize, policy: Partition) -> Vec<Vec<Anchor>> {
    let n = n.max(1);
    match policy {
        Partition::Block => {
            let chunk = anchors.len().div_ceil(n).max(1);
            let mut parts: Vec<Vec<Anchor>> = anchors.chunks(chunk).map(|c| c.to_vec()).collect();
            parts.resize(n, Vec::new());
            parts
        }
        Partition::Strided => {
            let mut parts = vec![Vec::with_capacity(anchors.len() / n + 1); n];
            for (i, &a) in anchors.iter().enumerate() {
                parts[i % n].push(a);
            }
            parts
        }
    }
}

/// Runs FastZ over `devices`, partitioning the anchors by `policy`
/// (fault-free).
///
/// Each device gets the same optimization flags and scoring from `cfg`;
/// `cfg.device` is ignored in favour of the per-device specs.
pub fn run_fastz_multi_gpu(
    target: &Sequence,
    query: &Sequence,
    anchors: &[Anchor],
    seed_span: usize,
    cfg: &FastZConfig,
    devices: &[DeviceSpec],
    policy: Partition,
) -> MultiGpuReport {
    run_fastz_multi_gpu_resilient(
        target,
        query,
        anchors,
        seed_span,
        cfg,
        devices,
        policy,
        &ResilienceConfig::disabled(),
    )
}

/// [`run_fastz_multi_gpu`] under a [`ResilienceConfig`].
///
/// Each device's partition is dispatched in
/// [`ResilienceConfig::dispatch_chunks`] host-visible chunks whose
/// results are gathered as they complete. A device lost at a chunk
/// boundary keeps its completed chunks (already on the host) and its
/// unfinished anchors are re-dispatched round-robin to the surviving
/// devices — each anchor is processed exactly once, so the deduped
/// alignment set is identical to a fault-free run. At least one device
/// always survives (a loss that would orphan the whole run is not
/// applied). Checkpointing is a single-run facility; per-device runs
/// here do not checkpoint.
#[allow(clippy::too_many_arguments)]
pub fn run_fastz_multi_gpu_resilient(
    target: &Sequence,
    query: &Sequence,
    anchors: &[Anchor],
    seed_span: usize,
    cfg: &FastZConfig,
    devices: &[DeviceSpec],
    policy: Partition,
    rcfg: &ResilienceConfig,
) -> MultiGpuReport {
    // Guard (like `partition_anchors`): an empty device list clamps to
    // one device modeled from `cfg` instead of panicking.
    let fallback;
    let devices: &[DeviceSpec] = if devices.is_empty() {
        fallback = [cfg.device.clone()];
        &fallback
    } else {
        devices
    };
    let parts = partition_anchors(anchors, devices.len(), policy);

    // Device-loss schedule: probe each device's dispatch-chunk boundaries.
    let n_chunks = rcfg.dispatch_chunks.max(1);
    let mut kept: Vec<Vec<Anchor>> = Vec::with_capacity(devices.len());
    let mut orphans: Vec<Anchor> = Vec::new();
    let mut lost_devices: Vec<usize> = Vec::new();
    let mut res = ResilienceReport::default();
    for (d, part) in parts.iter().enumerate() {
        let chunk = part.len().div_ceil(n_chunks).max(1);
        let mut loss_at = None;
        if !rcfg.plan.is_none() && !part.is_empty() {
            for c in 0..part.len().div_ceil(chunk) {
                let site = FaultSite::new(d as u32, scope::DEVICE, c as u64);
                if rcfg.plan.fires(FaultKind::DeviceLoss, site, 0) {
                    loss_at = Some(c * chunk);
                    break;
                }
            }
        }
        match loss_at {
            // Last-survivor guard: a loss that would leave no device
            // alive is not applied.
            Some(at) if lost_devices.len() + 1 < devices.len() => {
                lost_devices.push(d);
                res.injected.device_losses += 1;
                res.detected.device_losses += 1;
                res.redispatched_anchors += part.len() - at;
                res.overhead_s += HOST_SCATTER_GATHER_S;
                orphans.extend(part[at..].iter().copied());
                kept.push(part[..at].to_vec());
            }
            _ => kept.push(part.clone()),
        }
    }
    res.devices_lost = lost_devices.len();
    let survivors: Vec<usize> = (0..devices.len())
        .filter(|d| !lost_devices.contains(d))
        .collect();
    for (i, a) in orphans.into_iter().enumerate() {
        kept[survivors[i % survivors.len()]].push(a);
    }

    // Devices run concurrently on host threads (each with its own share
    // of the simulation pool so the fleet does not oversubscribe the
    // host), gathered back in device order; a device thread's panic is
    // re-raised here with its original payload. Results are identical
    // to the old serial loop by the pipeline's determinism contract.
    let host_threads = if cfg.sim_threads > 0 {
        cfg.sim_threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    };
    let per_device_threads = (host_threads / devices.len()).max(1);
    let per_device: Vec<FastZReport> = std::thread::scope(|s| {
        let handles: Vec<_> = devices
            .iter()
            .zip(&kept)
            .enumerate()
            .map(|(d, (dev, part))| {
                let dev_cfg = FastZConfig {
                    device: dev.clone(),
                    sim_threads: per_device_threads,
                    ..cfg.clone()
                };
                let dev_rcfg = ResilienceConfig {
                    device_ord: d as u32,
                    checkpoint: None,
                    ..rcfg.clone()
                };
                s.spawn(move || {
                    run_fastz_resilient(target, query, part, seed_span, &dev_cfg, &dev_rcfg)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });
    let mut alignments = Vec::new();
    for report in &per_device {
        res.merge(&report.resilience);
        alignments.extend(report.alignments.iter().cloned());
    }

    let straggler = straggler_index(per_device.iter().map(|r| r.modeled_time_s));
    let slowest = per_device[straggler].modeled_time_s;

    MultiGpuReport {
        alignments: dedupe_alignments(alignments),
        modeled_time_s: slowest
            + HOST_SCATTER_GATHER_S * devices.len() as f64
            + HOST_SCATTER_GATHER_S * lost_devices.len() as f64,
        per_device,
        straggler,
        partition: policy,
        resilience: res,
        lost_devices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ablation::OptFlags;
    use crate::pipeline::run_fastz;
    use fastz_genome::evolve::{generate_pair, PairParams};
    use fastz_genome::Scoring;
    use fastz_seed::{Workload, WorkloadParams};

    fn demo() -> (Sequence, Sequence, Vec<Anchor>, usize) {
        let pair = generate_pair(&PairParams {
            target_len: 15_000,
            query_len: 15_000,
            segments: 30,
            ..PairParams::small_demo("mgpu", 606)
        });
        let wl = Workload::build(
            &pair.target,
            &pair.query,
            &WorkloadParams {
                max_anchors: 240,
                ..WorkloadParams::default()
            },
        );
        let span = wl.shape.span();
        (pair.target, pair.query, wl.anchors, span)
    }

    fn cfg() -> FastZConfig {
        FastZConfig {
            flags: OptFlags::fastz(),
            ..FastZConfig::new(Scoring::bench_scaled(), DeviceSpec::rtx3080_ampere())
        }
    }

    #[test]
    fn partitioning_is_total_and_disjoint() {
        let anchors: Vec<Anchor> = (0..100)
            .map(|i| Anchor {
                target_pos: i,
                query_pos: i,
            })
            .collect();
        for policy in [Partition::Block, Partition::Strided] {
            let parts = partition_anchors(&anchors, 3, policy);
            assert_eq!(parts.len(), 3);
            let total: usize = parts.iter().map(|p| p.len()).sum();
            assert_eq!(total, anchors.len());
            let mut all: Vec<_> = parts.concat();
            all.sort_by_key(|a| a.target_pos);
            assert_eq!(all, anchors);
        }
    }

    #[test]
    fn zero_devices_and_zero_partitions_clamp() {
        let anchors: Vec<Anchor> = (0..10)
            .map(|i| Anchor {
                target_pos: i,
                query_pos: i,
            })
            .collect();
        let parts = partition_anchors(&anchors, 0, Partition::Strided);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 10);
        let (t, q, anchors, span) = demo();
        let report = run_fastz_multi_gpu(&t, &q, &anchors, span, &cfg(), &[], Partition::Strided);
        assert_eq!(
            report.per_device.len(),
            1,
            "empty fleet clamps to one device"
        );
        assert!(!report.alignments.is_empty());
    }

    #[test]
    fn device_loss_redispatches_and_preserves_alignments() {
        use fastz_gpu_sim::{FaultPlan, FaultRates};
        let (t, q, anchors, span) = demo();
        let single = run_fastz(&t, &q, &anchors, span, &cfg());
        let devices = vec![DeviceSpec::rtx3080_ampere(); 4];
        // Certain loss at the first chunk boundary of every device: the
        // last-survivor guard must keep exactly one alive, and that one
        // inherits every anchor.
        let plan = FaultPlan::from_seed(3).with_rates(FaultRates {
            device_loss: 1.0,
            ..FaultRates::NONE
        });
        let rcfg = ResilienceConfig::with_plan(plan);
        let multi = run_fastz_multi_gpu_resilient(
            &t,
            &q,
            &anchors,
            span,
            &cfg(),
            &devices,
            Partition::Strided,
            &rcfg,
        );
        assert_eq!(multi.lost_devices.len(), 3, "all but the last survivor die");
        assert_eq!(multi.resilience.devices_lost, 3);
        assert!(multi.resilience.redispatched_anchors > 0);
        assert_eq!(
            multi.alignments, single.alignments,
            "re-dispatch changed the alignment set"
        );
        assert!(multi.resilience.accounts_for_all_faults());

        // A drill-rate plan (partial losses) preserves the set too.
        let drill = ResilienceConfig::with_plan(FaultPlan::from_seed(9));
        let drilled = run_fastz_multi_gpu_resilient(
            &t,
            &q,
            &anchors,
            span,
            &cfg(),
            &devices,
            Partition::Strided,
            &drill,
        );
        assert_eq!(drilled.alignments, single.alignments);
        assert!(drilled.resilience.accounts_for_all_faults());
    }

    #[test]
    fn multi_gpu_matches_single_gpu_alignments() {
        let (t, q, anchors, span) = demo();
        let single = run_fastz(&t, &q, &anchors, span, &cfg());
        let devices = vec![DeviceSpec::rtx3080_ampere(); 4];
        for policy in [Partition::Block, Partition::Strided] {
            let multi = run_fastz_multi_gpu(&t, &q, &anchors, span, &cfg(), &devices, policy);
            assert_eq!(
                multi.alignments, single.alignments,
                "{policy:?} changed the alignments"
            );
        }
    }

    #[test]
    fn more_gpus_are_not_slower() {
        let (t, q, anchors, span) = demo();
        let one = run_fastz_multi_gpu(
            &t,
            &q,
            &anchors,
            span,
            &cfg(),
            &[DeviceSpec::rtx3080_ampere()],
            Partition::Strided,
        );
        let four = run_fastz_multi_gpu(
            &t,
            &q,
            &anchors,
            span,
            &cfg(),
            &vec![DeviceSpec::rtx3080_ampere(); 4],
            Partition::Strided,
        );
        // Host scatter/gather grows with device count, so compare the
        // device component.
        let one_dev = one.modeled_time_s - HOST_SCATTER_GATHER_S;
        let four_dev = four.modeled_time_s - 4.0 * HOST_SCATTER_GATHER_S;
        assert!(
            four_dev <= one_dev,
            "4 GPUs slower: {four_dev} vs {one_dev}"
        );
        assert!(four.efficiency(one_dev) <= 1.05);
    }

    #[test]
    fn strided_partitioning_balances_the_long_tail() {
        // With a long alignment cluster at the front of the anchor list,
        // block partitioning puts it all on device 0; striding spreads it.
        let (t, q, anchors, span) = demo();
        let devices = vec![DeviceSpec::rtx3080_ampere(); 4];
        let block = run_fastz_multi_gpu(&t, &q, &anchors, span, &cfg(), &devices, Partition::Block);
        let strided =
            run_fastz_multi_gpu(&t, &q, &anchors, span, &cfg(), &devices, Partition::Strided);
        assert!(strided.modeled_time_s <= block.modeled_time_s * 1.25);
        assert_eq!(block.alignments, strided.alignments);
    }

    #[test]
    fn straggler_ranking_handles_nan_and_infinity() {
        // `partial_cmp().unwrap()` panicked on the NaN; `total_cmp`
        // ranks it greatest (positive NaN sorts above +inf).
        assert_eq!(straggler_index([1.0, f64::NAN, 0.5].into_iter()), 1);
        assert_eq!(straggler_index([1.0, f64::INFINITY, 2.0].into_iter()), 1);
        assert_eq!(straggler_index([0.25, 0.5, 0.125].into_iter()), 1);
        // Ties keep the last index, like the old finite-input comparator.
        assert_eq!(straggler_index([3.0, 3.0].into_iter()), 1);
    }

    #[test]
    fn zero_bandwidth_device_ranks_without_panicking() {
        // A degenerate custom spec (no DRAM bandwidth, no clock) drives
        // the modeled kernel times through divisions by zero. The run
        // must complete, rank the degenerate device as the straggler,
        // and keep the alignment set intact.
        let (t, q, anchors, span) = demo();
        let broken = DeviceSpec {
            name: "degenerate",
            dram_bw_gbps: 0.0,
            clock_ghz: 0.0,
            ..DeviceSpec::rtx3080_ampere()
        };
        let devices = vec![broken, DeviceSpec::rtx3080_ampere()];
        let single = run_fastz(&t, &q, &anchors, span, &cfg());
        let multi =
            run_fastz_multi_gpu(&t, &q, &anchors, span, &cfg(), &devices, Partition::Strided);
        assert_eq!(multi.straggler, 0, "the degenerate device must straggle");
        assert!(
            !multi.modeled_time_s.is_finite(),
            "a zero-bandwidth device cannot finish in finite modeled time"
        );
        assert_eq!(multi.alignments, single.alignments);
    }

    #[test]
    fn rebalancer_balances_load_and_prefers_residency() {
        // Four equal devices, twelve equal shards, no residency: greedy
        // LPT spreads them three per device.
        let loads = vec![1.0; 12];
        let speeds = vec![1.0; 4];
        let cold = rebalance_shards(&loads, &speeds, &[None; 12]);
        assert_eq!(cold.reused, 0);
        assert_eq!(cold.moved, 12);
        for d in 0..4 {
            assert_eq!(
                cold.assignments.iter().filter(|&&a| a == d).count(),
                3,
                "device {d} shard count"
            );
        }
        // Warm pass with the cold placement as residency: every shard
        // stays home and the makespan drops by the waived move costs.
        let residency: Vec<Option<usize>> = cold.assignments.iter().map(|&d| Some(d)).collect();
        let warm = rebalance_shards(&loads, &speeds, &residency);
        assert_eq!(warm.reused, 12);
        assert_eq!(warm.moved, 0);
        assert_eq!(warm.assignments, cold.assignments);
        assert!(warm.makespan_s < cold.makespan_s);
        // A heavily skewed residency is overridden: balance beats
        // locality when one device holds everything.
        let all_on_0: Vec<Option<usize>> = vec![Some(0); 12];
        let spread = rebalance_shards(&loads, &speeds, &all_on_0);
        assert!(
            spread.moved >= 8,
            "only {} shards moved off the hot device",
            spread.moved
        );
        assert!(spread.makespan_s < 12.0 * (1.0 + SHARD_MOVE_COST_S) / 2.0);
    }

    #[test]
    fn rebalancer_scales_by_device_speed_and_survives_degenerate_specs() {
        // A device twice as fast should take roughly twice the work.
        let loads = vec![1.0; 9];
        let sched = rebalance_shards(&loads, &[2.0, 1.0], &[None; 9]);
        let fast = sched.assignments.iter().filter(|&&d| d == 0).count();
        assert!(fast >= 5, "fast device took only {fast}/9 shards");
        assert_eq!(
            sched.straggler,
            straggler_index(sched.device_load_s.iter().copied())
        );
        // Zero-speed and NaN inputs order deterministically, never panic.
        let weird = rebalance_shards(&[f64::NAN, 1.0, f64::INFINITY], &[0.0, 1.0], &[None; 3]);
        assert_eq!(weird.assignments.len(), 3);
        assert_eq!(
            weird.assignments[1], 1,
            "finite shard lands on the usable device"
        );
        // With finite loads, a zero-speed device is simply avoided.
        let avoid = rebalance_shards(&[1.0; 3], &[0.0, 1.0], &[None; 3]);
        assert!(
            avoid.assignments.iter().all(|&d| d == 1),
            "unusable device avoided"
        );
        // Empty fleet clamps to one device.
        let clamped = rebalance_shards(&[1.0, 2.0], &[], &[None, None]);
        assert!(clamped.assignments.iter().all(|&d| d == 0));
        // Speed proxy sanity: Ampere ≈ 1, Pascal slower, degenerate 0.
        assert!((device_speed(&DeviceSpec::rtx3080_ampere()) - 1.0).abs() < 0.2);
        assert!(device_speed(&DeviceSpec::titan_x_pascal()) < 1.0);
        let dead = DeviceSpec {
            clock_ghz: 0.0,
            ..DeviceSpec::rtx3080_ampere()
        };
        assert_eq!(device_speed(&dead), 0.0);
    }

    #[test]
    fn shard_local_partitioning_is_total_and_preserves_alignments() {
        let (t, q, anchors, span) = demo();
        // Shard the window space into 6 intervals and place them on 3
        // devices by modeled (entry-count) load.
        let n_windows = (t.len() - span + 1) as u64;
        let per = n_windows.div_ceil(6);
        let bounds: Vec<(u64, u64)> = (0..6)
            .map(|s| ((s * per).min(n_windows), ((s + 1) * per).min(n_windows)))
            .collect();
        let loads: Vec<f64> = bounds
            .iter()
            .map(|&(lo, hi)| {
                anchors
                    .iter()
                    .filter(|a| (a.target_pos as u64) >= lo && (a.target_pos as u64) < hi)
                    .count() as f64
            })
            .collect();
        let sched = rebalance_shards(&loads, &[1.0; 3], &[None; 6]);
        let parts = partition_anchors_sharded(&anchors, &bounds, &sched, 3);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, anchors.len(), "no anchor dropped or duplicated");
        let mut all: Vec<_> = parts.concat();
        all.sort_by_key(|a| (a.query_pos, a.target_pos));
        let mut want = anchors.clone();
        want.sort_by_key(|a| (a.query_pos, a.target_pos));
        assert_eq!(all, want);
        // Running each shard-local partition through the pipeline and
        // merging reproduces the single-run alignment set exactly.
        let single = run_fastz(&t, &q, &anchors, span, &cfg());
        let mut merged = Vec::new();
        for part in &parts {
            merged.extend(run_fastz(&t, &q, part, span, &cfg()).alignments);
        }
        assert_eq!(dedupe_alignments(merged), single.alignments);
    }

    #[test]
    fn heterogeneous_devices_straggle_on_the_slowest() {
        let (t, q, anchors, span) = demo();
        let devices = vec![DeviceSpec::rtx3080_ampere(), DeviceSpec::titan_x_pascal()];
        let multi =
            run_fastz_multi_gpu(&t, &q, &anchors, span, &cfg(), &devices, Partition::Strided);
        // The straggler index reflects the slowest per-device time (which
        // partition holds the longest problem varies with the stride).
        let argmax = multi
            .per_device
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.modeled_time_s.total_cmp(&b.1.modeled_time_s))
            .unwrap()
            .0;
        assert_eq!(multi.straggler, argmax);
        assert!(multi.straggler_timeline().total() > 0.0);
        // And an all-Pascal fleet is slower than an all-Ampere fleet.
        let pascal_fleet = run_fastz_multi_gpu(
            &t,
            &q,
            &anchors,
            span,
            &cfg(),
            &vec![DeviceSpec::titan_x_pascal(); 2],
            Partition::Strided,
        );
        let ampere_fleet = run_fastz_multi_gpu(
            &t,
            &q,
            &anchors,
            span,
            &cfg(),
            &vec![DeviceSpec::rtx3080_ampere(); 2],
            Partition::Strided,
        );
        assert!(pascal_fleet.modeled_time_s > ampere_fleet.modeled_time_s);
    }
}
