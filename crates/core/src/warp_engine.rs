//! The warp-parallel y-drop extension engine (FastZ's DP kernel body).
//!
//! One seed-extension side runs on one warp (paper §3.1.1). Columns of
//! the DP matrix are strip-mined 32 at a time; within a strip the
//! wavefront advances along anti-diagonals, lane ℓ owning column
//! `strip_base + ℓ + 1` and computing one row per step. Per-lane live
//! state is exactly the paper's three-diagonal **cyclic use-and-discard
//! register buffer** (§3.2): the S/I/D values of the lane's previous row
//! plus the S value of the row before that; horizontal and diagonal
//! dependencies arrive from lane ℓ−1 via warp shuffles. Only lane 31
//! writes its column's state to the strip-boundary spill buffer — the
//! 1/32 residual traffic of §3.2.
//!
//! Pruning uses a **provably LASTZ-superset threshold**: a cell `(i, j)`
//! may be pruned only against scores of cells that LASTZ's row-major
//! sweep would have completed before it — rows `< i`, or row `i` at
//! columns `< j`. Two sources satisfy that order: (a) the warp-wide
//! maxima of anti-diagonals at least 32 steps old (every lane of those
//! diagonals lies on a strictly smaller row than any current cell), and
//! (b) the per-row prefix maxima of all previous strips. Consequently
//! the engine explores a superset of sequential LASTZ's cells and
//! returns the same or an occasionally higher score (§3.4).

use crate::ablation::OptFlags;
use crate::wavefront_step::{step_interpreter, step_simd, StepIn};
use fastz_align::score;
use fastz_align::trace::{CellScores, CellSink, NoTrace};
use fastz_align::ydrop::{tb, NEG_INF};
use fastz_align::{walk_traceback_with, EditOp};
use fastz_genome::Scoring;
use fastz_gpu_sim::sanitize::stage as san_stage;
use fastz_gpu_sim::{lanes32, shfl_up, splat, Lanes, SharedMem, WarpCounters, WARP_SIZE};

/// Which host realization of the 32-lane wavefront executes each step.
///
/// Both backends run the identical step semantics (the kernels live in
/// [`crate::wavefront_step`]); every observable output — alignments, bin
/// counts, counters, sanitizer findings, modeled-GPU-time bits — is
/// bit-identical between them. The choice only affects host wall-clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WavefrontBackend {
    /// Scalar lane-by-lane interpretation (the reference semantics).
    #[default]
    Interpreter,
    /// 32-wide host-SIMD vectors via [`fastz_gpu_sim::lanes32`].
    Simd,
}

/// Per-call configuration of the warp engine.
#[derive(Clone, Copy, Debug)]
pub struct WarpConfig {
    /// Keep the three-diagonal state in registers (true) or round-trip
    /// every lane's scores through global memory (false) — §3.2 / Fig 9.
    pub cyclic_buffers: bool,
    /// Eager-traceback window size (0 disables): a `W×W` packed traceback
    /// kept in shared memory; alignments that end inside it finish in the
    /// inspector (§3.1.2).
    pub eager_window: usize,
    /// Record a full packed traceback matrix and walk it (executor mode).
    pub record_traceback: bool,
    /// Row bound (query extent); `usize::MAX` = full search.
    pub max_rows: usize,
    /// Column bound (target extent); `usize::MAX` = full search.
    pub max_cols: usize,
    /// Lanes per strip, `1..=WARP_SIZE` (default [`WARP_SIZE`]). The
    /// result must not depend on this — it only changes how the matrix
    /// is strip-mined — which the conformance suite checks by sweeping
    /// widths.
    pub strip_width: usize,
    /// Host realization of the per-step lane arithmetic (interpreter or
    /// SIMD). The result must not depend on this either — both backends
    /// are bit-identical by contract.
    pub backend: WavefrontBackend,
}

impl WarpConfig {
    /// Inspector configuration under `flags`.
    pub fn inspector(flags: &OptFlags) -> WarpConfig {
        WarpConfig {
            cyclic_buffers: flags.cyclic_buffers,
            eager_window: if flags.eager_traceback { 16 } else { 0 },
            record_traceback: false,
            max_rows: usize::MAX,
            max_cols: usize::MAX,
            strip_width: WARP_SIZE,
            backend: WavefrontBackend::default(),
        }
    }

    /// Executor configuration under `flags`, trimmed to the inspector's
    /// optimal cell when trimming is enabled.
    pub fn executor(flags: &OptFlags, best_i: usize, best_j: usize) -> WarpConfig {
        let (max_rows, max_cols) = if flags.executor_trimming {
            (best_i, best_j)
        } else {
            (usize::MAX, usize::MAX)
        };
        WarpConfig {
            cyclic_buffers: flags.cyclic_buffers,
            eager_window: 0,
            record_traceback: true,
            max_rows,
            max_cols,
            strip_width: WARP_SIZE,
            backend: WavefrontBackend::default(),
        }
    }

    /// The same configuration with `width` lanes per strip.
    pub fn with_strip_width(self, width: usize) -> WarpConfig {
        WarpConfig {
            strip_width: width,
            ..self
        }
    }

    /// The same configuration running on `backend`.
    pub fn with_backend(self, backend: WavefrontBackend) -> WarpConfig {
        WarpConfig { backend, ..self }
    }
}

/// Result of one warp extension.
#[derive(Clone, Debug)]
pub struct WarpExtension {
    /// Best score found (≥ 0).
    pub best_score: i32,
    /// Query bases consumed at the best cell.
    pub best_i: usize,
    /// Target bases consumed at the best cell.
    pub best_j: usize,
    /// Edit script recovered by eager traceback (inspector mode, only if
    /// the optimum fell inside the window).
    pub eager_ops: Option<Vec<EditOp>>,
    /// Edit script recovered from the full traceback (executor mode).
    pub ops: Option<Vec<EditOp>>,
    /// Work counters for the timing model.
    pub counters: WarpCounters,
    /// Maximum row (query extent) computed during the search.
    pub explored_rows: usize,
    /// Maximum column (target extent) computed during the search.
    pub explored_cols: usize,
}

impl WarpExtension {
    /// Optimal-alignment extent: the larger of the two sequence extents
    /// at the best cell. This is the length that drives §3.3 binning
    /// ("smallest bin in which the alignment is contained") and the
    /// seed-extent histogram.
    pub fn extent(&self) -> usize {
        self.best_i.max(self.best_j)
    }
}

/// Spill-buffer entry: boundary-column (S, I) for one row.
#[derive(Clone, Copy)]
struct Spill {
    s: i32,
    i: i32,
}

const DEAD: Spill = Spill {
    s: NEG_INF,
    i: NEG_INF,
};

/// Runs one warp extension of `query` against `target` (suffix slices in
/// the extension direction). `shared` models the block's shared memory;
/// the eager window lives there.
pub fn warp_extend(
    target: &[u8],
    query: &[u8],
    scoring: &Scoring,
    cfg: &WarpConfig,
    shared: &mut SharedMem,
) -> WarpExtension {
    warp_extend_traced(target, query, scoring, cfg, shared, &mut NoTrace)
}

/// [`warp_extend`] with an externally owned traceback matrix buffer.
///
/// `tbm` is cleared and zero-resized to exactly the trimmed `m×n` cell
/// count before use (only in executor mode; non-recording calls never
/// touch it), so a buffer reused across problems — e.g. from a
/// [`crate::pool::Arena`] — produces bit-identical results to a fresh
/// allocation while skipping the per-problem allocation entirely.
pub fn warp_extend_in(
    target: &[u8],
    query: &[u8],
    scoring: &Scoring,
    cfg: &WarpConfig,
    shared: &mut SharedMem,
    tbm: &mut Vec<u8>,
) -> WarpExtension {
    warp_extend_traced_in(target, query, scoring, cfg, shared, tbm, &mut NoTrace)
}

/// [`warp_extend`] that additionally reports every live cell to `sink`
/// (the conformance oracle's cell-for-cell hook; [`NoTrace`] compiles
/// the calls away on the production path).
pub fn warp_extend_traced<K: CellSink>(
    target: &[u8],
    query: &[u8],
    scoring: &Scoring,
    cfg: &WarpConfig,
    shared: &mut SharedMem,
    sink: &mut K,
) -> WarpExtension {
    let mut tbm = Vec::new();
    warp_extend_traced_in(target, query, scoring, cfg, shared, &mut tbm, sink)
}

/// [`warp_extend_traced`] with an externally owned traceback buffer
/// (see [`warp_extend_in`]).
pub fn warp_extend_traced_in<K: CellSink>(
    target: &[u8],
    query: &[u8],
    scoring: &Scoring,
    cfg: &WarpConfig,
    shared: &mut SharedMem,
    tbm: &mut Vec<u8>,
    sink: &mut K,
) -> WarpExtension {
    let so_se = scoring.gaps.open_score();
    let se = scoring.gaps.extend_score();
    let ydrop = scoring.ydrop;
    let n = target.len().min(cfg.max_cols);
    let m = query.len().min(cfg.max_rows);
    let w = cfg.eager_window;
    // The strip width defaults to the warp size; narrower strips model
    // partial warps and must produce identical results.
    let width = cfg.strip_width;
    assert!(
        (1..=WARP_SIZE).contains(&width),
        "strip_width {width} outside 1..={WARP_SIZE}"
    );

    let mut counters = WarpCounters::default();
    let mut best_score = 0i32;
    let (mut best_i, mut best_j) = (0usize, 0usize);

    // Racecheck accessor identity for the DP sweep (no-op unless a
    // sanitizer is attached to the scratchpad). The sanitizer never
    // touches `counters`, so modeled time is bit-identical either way.
    shared.sanitize_stage(san_stage::WAVEFRONT);
    let sanitizing = shared.sanitizer().is_some();

    if n == 0 || m == 0 {
        // Pure gap chains score negative; the origin is optimal.
        return WarpExtension {
            best_score: 0,
            best_i: 0,
            best_j: 0,
            eager_ops: (w > 0).then(Vec::new),
            ops: cfg.record_traceback.then(Vec::new),
            counters,
            explored_rows: 0,
            explored_cols: 0,
        };
    }

    // Row-0 boundary chain value at column j. Saturating-clamped gap
    // arithmetic: a chain long enough to overflow i32 must floor at the
    // NEG_INF sentinel, not wrap (crates/align score module docs).
    let r0 = |j: usize| -> i32 {
        if j == 0 {
            0
        } else {
            score::gap_chain(so_se, se, j as i32 - 1)
        }
    };

    // Sound per-strip row-reachability bound: entering a `width`-column
    // strip at row r, a path can gain at most `width` diagonal matches
    // before every further row costs a gap-extend, so live cells cannot
    // lie more than `width + (ydrop + width·max_match)/extend` rows below
    // any live entry row. This caps every row-indexed buffer at the
    // explored region instead of the full query suffix.
    let max_match = scoring.subst.max_score().max(0);
    let delta =
        width + ((ydrop + width as i32 * max_match).max(0) / scoring.gaps.extend.max(1)) as usize;

    // Executor traceback matrix (trimmed to m×n by construction). The
    // buffer is zeroed to exactly the cell count (a fresh allocation is
    // lazily paged by the OS — the same way a cudaMalloc'd bin
    // allocation costs nothing until written; a reused arena buffer
    // keeps its capacity); written bytes carry a marker bit so untouched
    // cells read back as unreachable.
    const TB_WRITTEN: u8 = 0x80;
    if cfg.record_traceback {
        let cells = m.checked_mul(n).expect("traceback matrix size overflow");
        assert!(
            cells <= 8 << 30,
            "executor traceback of {m}x{n} cells exceeds the model's allocation cap"
        );
        tbm.clear();
        tbm.resize(cells, 0);
    }

    // Spill buffer: boundary column state per row. Strip 0's boundary is
    // matrix column 0 (analytic gap chain).
    let mut row_cap = m.min(delta);
    let mut spill: Vec<Spill> = (0..=row_cap)
        .map(|i| {
            if i == 0 {
                Spill { s: 0, i: NEG_INF }
            } else {
                Spill {
                    s: score::gap_chain(so_se, se, i as i32 - 1),
                    i: NEG_INF,
                }
            }
        })
        .collect();

    // Per-row maxima of completed strips (LASTZ-order-safe threshold
    // source b), kept as prefix maxima over rows.
    let mut row_prefix_best: Vec<i32> = vec![NEG_INF; row_cap + 1];
    row_prefix_best[0] = 0; // the origin
    let mut row_max_strip: Vec<i32> = vec![NEG_INF; row_cap + 1];
    let mut explored_rows = 0usize;
    let mut explored_cols = 0usize;

    let mut strip_base = 0usize;
    loop {
        let lanes_valid = width.min(n - strip_base);
        debug_assert!(lanes_valid > 0);
        explored_cols = explored_cols.max(strip_base + lanes_valid);

        // Start the wavefront at the strip's live row window instead of
        // row 1: rows whose only inputs are dead spill entries and a
        // dead row-0 chain cannot hold live cells, so skipping them is
        // exact (a real kernel tracks this window the same way; without
        // it every strip of a long alignment would sweep from the top).
        //
        // Liveness here must be judged against the same order-safe
        // threshold sources as the in-strip check (module docs): the
        // row-prefix maxima of completed strips, never the global best,
        // which already contains cells from rows *below* the candidate —
        // rows a row-major scan has not reached yet. Using the global
        // best here pruned rows the scalar engines keep (caught by the
        // conformance suite's warp-superset invariant). `max_match`
        // covers the one diagonal gain a spill value contributes to the
        // row beneath it, whose prefix threshold may be higher.
        let entry_dead = |r: usize, s: i32, i: i32| -> bool {
            s.max(i) + max_match < row_prefix_best[r.min(row_cap)] - ydrop
        };
        let row0_alive = !entry_dead(1, r0(strip_base), NEG_INF);
        let row_base = if row0_alive {
            0
        } else {
            match spill
                .iter()
                .enumerate()
                .position(|(r, sp)| !entry_dead(r, sp.s, sp.i))
            {
                Some(first_live) => first_live.saturating_sub(1),
                None => break, // no live input anywhere: done
            }
        };

        // Per-lane cyclic register state, initialized to row `row_base`
        // (the row-0 boundary chain when starting at the top, dead
        // otherwise — cells of row `row_base` itself are dead or
        // boundary by construction).
        let mut s_cur: Lanes<i32> = splat(NEG_INF);
        let mut i_cur: Lanes<i32> = splat(NEG_INF);
        let mut d_cur: Lanes<i32> = splat(NEG_INF);
        let mut s_prev: Lanes<i32> = splat(NEG_INF);
        if row_base == 0 {
            for l in 0..lanes_valid {
                let j = strip_base + l + 1;
                s_cur[l] = r0(j);
                i_cur[l] = r0(j);
            }
        }

        row_max_strip.clear();
        row_max_strip.resize(row_cap + 1, NEG_INF);

        let mut next_spill: Vec<Spill> = vec![DEAD; row_cap + 1];
        if strip_base + width < n {
            let boundary = strip_base + width;
            next_spill[0] = Spill {
                s: r0(boundary),
                i: r0(boundary),
            };
        }

        // Lagged anti-diagonal maxima (threshold source a): ring of the
        // last `width` step maxima plus the running max of anything
        // older (a diagonal `width` steps old lies entirely on rows
        // strictly below every current cell).
        let mut diag_ring = [NEG_INF; WARP_SIZE];
        let mut lagged_best = NEG_INF;

        let mut strip_live = false;
        let mut last_live_t: i64 = -1;
        let mut spill_live_ptr = row_base + 1; // next spill row not yet known-dead

        let mut live_max_row = 0usize;
        // Per-step gather scratch shared by both backends (substitution
        // scores and pruning thresholds of the active lanes).
        let mut subst_v: Lanes<i32> = splat(0);
        let mut thresh_v: Lanes<i32> = splat(0);
        // the last lane finishes row row_cap at t_max - 2
        let rows_avail = row_cap - row_base;
        let t_max = rows_avail + width;
        let mut t = 0usize;
        while t < t_max {
            let lane0_row = row_base + t + 1;
            // Shuffle in the left-neighbour values; lane 0 reads the
            // strip-boundary spill. The SIMD backend realizes the same
            // `__shfl_up_sync` as one whole-vector shift with edge-lane
            // injection (bit-identical; pinned by the lanes32 tests).
            let sp = |r: usize| spill.get(r).copied().unwrap_or(DEAD);
            let fill = sp(lane0_row);
            let fill_diag = sp(lane0_row - 1).s;
            let (s_left, i_left, s_diag_v) = match cfg.backend {
                WavefrontBackend::Interpreter => (
                    shfl_up(&s_cur, 1, fill.s),
                    shfl_up(&i_cur, 1, fill.i),
                    shfl_up(&s_prev, 1, fill_diag),
                ),
                WavefrontBackend::Simd => (
                    lanes32::shift_up1(&s_cur, fill.s),
                    lanes32::shift_up1(&i_cur, fill.i),
                    lanes32::shift_up1(&s_prev, fill_diag),
                ),
            };
            counters.shuffles += 3;
            // One bank-conflict access group per wavefront step.
            shared.sanitize_tick();

            // Contiguous active-lane window of this step: lane ℓ computes
            // row `lane0_row − ℓ`, so lanes above `hi` have not started
            // and lanes below `lo` have finished their column (the same
            // predicate the interpreter's per-lane guards used to check
            // one lane at a time).
            let lo = (t + 1).saturating_sub(rows_avail);
            let hi = t.min(lanes_valid - 1);

            // Shared per-lane gathers: the substitution score of each
            // active lane's cell and the LASTZ-order-safe pruning
            // threshold (module docs). Performed once, fed to whichever
            // kernel runs, so both backends consume identical inputs.
            if lo <= hi {
                for l in lo..=hi {
                    let i_idx = lane0_row - l;
                    let j_idx = strip_base + l + 1;
                    subst_v[l] = scoring.subst.score(target[j_idx - 1], query[i_idx - 1]);
                    thresh_v[l] = lagged_best.max(row_prefix_best[i_idx]) - ydrop;
                }
            }

            let step_in = StepIn {
                s_left: &s_left,
                i_left: &i_left,
                s_diag: &s_diag_v,
                s_cur: &s_cur,
                d_cur: &d_cur,
                subst: &subst_v,
                threshold: &thresh_v,
                so_se,
                se,
                lo,
                hi,
            };
            let out = match cfg.backend {
                WavefrontBackend::Interpreter => step_interpreter(&step_in),
                WavefrontBackend::Simd => step_simd(&step_in),
            };

            if sanitizing {
                if let Some(s) = shared.sanitizer() {
                    // Ballot-mask / active-lane consistency: a step may
                    // only activate lanes inside the strip's valid set.
                    let valid_mask = ((1u64 << lanes_valid) - 1) as u32;
                    s.check_ballot(out.active_mask, valid_mask);
                }
            }

            if out.active_mask == 0 {
                break;
            }
            let active_lanes = u64::from(out.active_mask.count_ones());
            // Rows decrease with lane index, so lane `lo` is deepest.
            explored_rows = explored_rows.max(lane0_row - lo);

            // Shared bookkeeping over the step's outputs — identical for
            // both backends, which can therefore only diverge inside the
            // step kernels (and those are pinned per step by the
            // differential tests).
            let mut live_this_step = false;
            let mut step_max = NEG_INF;
            for l in lo..=hi {
                let i_idx = lane0_row - l;
                let j_idx = strip_base + l + 1;
                if out.live_mask & (1 << l) != 0 {
                    debug_assert!(
                        out.s_store[l] > NEG_INF / 2,
                        "live cell ({i_idx},{j_idx}) carries a sentinel-derived S value {}",
                        out.s_store[l]
                    );
                    sink.record(
                        i_idx,
                        j_idx,
                        CellScores {
                            s: out.s_store[l],
                            i: out.i_store[l],
                            d: out.d_store[l],
                        },
                    );
                    live_this_step = true;
                    strip_live = true;
                    live_max_row = live_max_row.max(i_idx);
                    step_max = step_max.max(out.s_store[l]);
                    row_max_strip[i_idx] = row_max_strip[i_idx].max(out.s_store[l]);
                    if out.s_store[l] > best_score {
                        best_score = out.s_store[l];
                        best_i = i_idx;
                        best_j = j_idx;
                    }
                }

                // Traceback byte (the kernel computes one for every
                // active lane; S_ORIGIN source when pruned).
                if cfg.record_traceback {
                    tbm[(i_idx - 1) * n + (j_idx - 1)] = out.tb[l] | TB_WRITTEN;
                    counters.global_written += 1; // 1 B/cell, staged
                    counters.shared_bytes += 2; //   through shared
                }
                if w > 0 && i_idx <= w && j_idx <= w {
                    shared.write_u8((i_idx - 1) * w + (j_idx - 1), out.tb[l]);
                    counters.shared_bytes += 1;
                }
            }

            // Cyclic register rotation: discard the oldest diagonal. The
            // windowed copy leaves finished and unstarted lanes' registers
            // untouched; with the whole warp active it degenerates to a
            // whole-vector rotation of the three-row buffer.
            s_prev[lo..=hi].copy_from_slice(&s_cur[lo..=hi]);
            s_cur[lo..=hi].copy_from_slice(&out.s_store[lo..=hi]);
            i_cur[lo..=hi].copy_from_slice(&out.i_store[lo..=hi]);
            d_cur[lo..=hi].copy_from_slice(&out.d_store[lo..=hi]);

            // The last lane spills the strip boundary for the next strip.
            if strip_base + width < n && (lo..=hi).contains(&(width - 1)) {
                next_spill[lane0_row - (width - 1)] = Spill {
                    s: out.s_store[width - 1],
                    i: out.i_store[width - 1],
                };
            }

            counters.steps += 1;
            counters.cells += active_lanes;
            counters.alu_ops += 9 * width as u64;
            let any_dead = out.active_mask & !out.live_mask != 0;
            if any_dead && out.live_mask != 0 {
                counters.divergent_steps += 1;
                if let Some(s) = shared.sanitizer() {
                    s.note_divergent_step();
                }
            }
            if cfg.cyclic_buffers {
                // Only the boundary lane writes scores (12 B: S, I, D).
                if strip_base + width < n {
                    counters.global_written += 12;
                }
            } else {
                // Every active lane round-trips its 12 B of scores.
                counters.global_written += 12 * active_lanes;
            }

            // Update the lagged threshold source.
            let expiring = diag_ring[t % width];
            lagged_best = lagged_best.max(expiring);
            diag_ring[t % width] = step_max;

            if live_this_step {
                last_live_t = t as i64;
            } else if t as i64 - last_live_t >= width as i64 {
                // A full diagonal window has been dead; if no live spill
                // input remains ahead of lane 0, nothing downstream can
                // revive. Judged with the same order-safe entry threshold
                // as the strip-start window scan.
                let spill_rows = spill.len() - 1;
                while spill_live_ptr <= spill_rows
                    && (spill_live_ptr <= lane0_row
                        || entry_dead(
                            spill_live_ptr,
                            spill[spill_live_ptr].s,
                            spill[spill_live_ptr].i,
                        ))
                {
                    spill_live_ptr += 1;
                }
                if spill_live_ptr > spill_rows {
                    break;
                }
            }
            t += 1;
        }

        if !strip_live {
            break;
        }

        // Fold this strip's row maxima into the prefix-best array.
        let mut running = NEG_INF;
        for i in 0..=row_cap {
            running = running.max(row_max_strip[i]);
            row_prefix_best[i] = row_prefix_best[i].max(running).max(if i > 0 {
                row_prefix_best[i - 1]
            } else {
                NEG_INF
            });
        }

        // Grow the row cap for the next strip from this strip's deepest
        // live row (see the reachability bound above); rows beyond the
        // old cap inherit the prefix maximum.
        let new_cap = m.min(live_max_row + delta);
        if new_cap > row_cap {
            let tail = row_prefix_best[row_cap];
            row_prefix_best.resize(new_cap + 1, tail);
        }
        row_cap = new_cap;

        strip_base += width;
        if strip_base >= n {
            break;
        }
        // The boundary spill is consumed by the same warp on the very next
        // strip, so the reload hits L2 — like the paper's §6 accounting we
        // charge only the 12 B/step write side to DRAM.
        spill = next_spill;
    }

    // Eager traceback: finish in the inspector if the optimum fits the
    // shared-memory window.
    let eager_ops = if w > 0 && best_i <= w && best_j <= w {
        // The CUDA kernel separates the wavefront writes from the
        // in-window walk with __syncthreads(); model that barrier so
        // the racecheck knows these reads cannot race the DP sweep.
        shared.sanitize_barrier();
        shared.sanitize_stage(san_stage::EAGER_TRACEBACK);
        let get = |i: usize, j: usize| -> u8 {
            if i == 0 && j == 0 {
                tb::S_ORIGIN
            } else if i == 0 {
                tb::S_FROM_I | if j > 1 { tb::I_EXTEND } else { 0 }
            } else if j == 0 {
                tb::S_FROM_D | if i > 1 { tb::D_EXTEND } else { 0 }
            } else {
                // The walk is a single scalar lane: each read is its
                // own access group, never a bank conflict.
                shared.sanitize_tick();
                shared.read_u8((i - 1) * w + (j - 1))
            }
        };
        let ops = walk_traceback_with(get, best_i, best_j);
        counters.scalar_ops += ops.iter().map(|o| o.len() as u64).sum::<u64>();
        Some(ops)
    } else {
        None
    };

    // Executor traceback walk (single lane; inter-seed parallelism only).
    let ops = if cfg.record_traceback {
        let get = |i: usize, j: usize| -> u8 {
            if i == 0 && j == 0 {
                tb::S_ORIGIN
            } else if i == 0 {
                tb::S_FROM_I | if j > 1 { tb::I_EXTEND } else { 0 }
            } else if j == 0 {
                tb::S_FROM_D | if i > 1 { tb::D_EXTEND } else { 0 }
            } else {
                let b = tbm[(i - 1) * n + (j - 1)];
                if b & TB_WRITTEN == 0 {
                    tb::S_ORIGIN
                } else {
                    b & 0x0F
                }
            }
        };
        let ops = walk_traceback_with(get, best_i, best_j);
        let walked: u64 = ops.iter().map(|o| o.len() as u64).sum();
        counters.scalar_ops += walked;
        counters.global_read += walked; // 1 B read per traceback step
        Some(ops)
    } else {
        None
    };

    WarpExtension {
        best_score,
        best_i,
        best_j,
        eager_ops,
        ops,
        counters,
        explored_rows,
        explored_cols,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastz_align::ydrop::{ydrop_extend, PruneMode};
    use fastz_genome::evolve::random_codes;
    use fastz_genome::{GapPenalties, Scoring, Sequence, SubstMatrix};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn codes(s: &[u8]) -> Vec<u8> {
        Sequence::from_ascii("x", s).unwrap().codes().to_vec()
    }

    fn scoring() -> Scoring {
        Scoring {
            subst: SubstMatrix::match_mismatch(10, -15),
            gaps: GapPenalties::new(30, 5),
            ydrop: 120,
            xdrop: 40,
            hsp_threshold: 50,
            gapped_threshold: 50,
        }
    }

    fn inspector_cfg() -> WarpConfig {
        WarpConfig::inspector(&OptFlags::fastz())
    }

    fn run(t: &[u8], q: &[u8], cfg: &WarpConfig) -> WarpExtension {
        // Sized from the modeled device, not a hardcoded byte count.
        let mut shared = SharedMem::for_device(&fastz_gpu_sim::DeviceSpec::rtx3080_ampere());
        warp_extend(t, q, &scoring(), cfg, &mut shared)
    }

    #[test]
    fn reused_traceback_buffer_matches_fresh_allocation() {
        // An arena-reused (dirty, over-capacity) buffer must be invisible
        // to the DP: identical score, optimum, and edit script.
        let sc = scoring();
        let mut rng = SmallRng::seed_from_u64(21);
        let t = random_codes(250, 0.5, &mut rng);
        let mut q = t.clone();
        q.splice(100..104, []);
        let insp = run(&t, &q, &inspector_cfg());
        let exec_cfg = WarpConfig::executor(&OptFlags::fastz(), insp.best_i, insp.best_j);
        let fresh = run(&t, &q, &exec_cfg);
        let mut shared = SharedMem::for_device(&fastz_gpu_sim::DeviceSpec::rtx3080_ampere());
        let mut dirty = vec![0xFFu8; 1 << 20];
        let reused = warp_extend_in(&t, &q, &sc, &exec_cfg, &mut shared, &mut dirty);
        assert_eq!(reused.best_score, fresh.best_score);
        assert_eq!((reused.best_i, reused.best_j), (fresh.best_i, fresh.best_j));
        assert_eq!(reused.ops, fresh.ops);
        assert_eq!(reused.counters, fresh.counters);
    }

    #[test]
    fn empty_inputs_return_origin() {
        let r = run(&[], &[], &inspector_cfg());
        assert_eq!(r.best_score, 0);
        assert_eq!(r.eager_ops.as_deref(), Some(&[][..]));
    }

    #[test]
    fn perfect_match_within_one_strip() {
        let t = codes(b"ACGTACGTAC");
        let r = run(&t, &t, &inspector_cfg());
        assert_eq!(r.best_score, 100);
        assert_eq!((r.best_i, r.best_j), (10, 10));
        assert_eq!(r.eager_ops.unwrap(), vec![EditOp::Diag(10)]);
    }

    #[test]
    fn perfect_match_across_many_strips() {
        let t: Vec<u8> = random_codes(500, 0.5, &mut SmallRng::seed_from_u64(1));
        let r = run(&t, &t, &inspector_cfg());
        assert_eq!(r.best_score, 5000);
        assert_eq!((r.best_i, r.best_j), (500, 500));
        // Too long for the eager window.
        assert!(r.eager_ops.is_none());
    }

    #[test]
    fn matches_exact_engine_on_clean_homology() {
        let sc = scoring();
        for seed in 0..20u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let t = random_codes(300, 0.45, &mut rng);
            // Query: noisy copy with one small indel.
            let mut q = t.clone();
            for b in q.iter_mut() {
                if rng.gen_bool(0.05) {
                    *b = (*b + 1 + rng.gen_range(0..3)) % 4;
                }
            }
            let cut = rng.gen_range(50..250);
            q.splice(cut..cut + 2, []);
            let exact = ydrop_extend(&t, &q, &sc, PruneMode::Exact, false);
            let warp = run(&t, &q, &inspector_cfg());
            assert!(
                warp.best_score >= exact.best_score,
                "seed {seed}: warp {} < exact {}",
                warp.best_score,
                exact.best_score
            );
        }
    }

    #[test]
    fn equality_with_exact_engine_is_the_common_case() {
        let sc = scoring();
        let mut equal = 0;
        let total = 50;
        for seed in 0..total {
            let mut rng = SmallRng::seed_from_u64(1000 + seed);
            let t = random_codes(200, 0.5, &mut rng);
            let mut q = t.clone();
            for b in q.iter_mut() {
                if rng.gen_bool(0.08) {
                    *b = (*b + 1 + rng.gen_range(0..3)) % 4;
                }
            }
            let exact = ydrop_extend(&t, &q, &sc, PruneMode::Exact, false);
            let warp = run(&t, &q, &inspector_cfg());
            assert!(warp.best_score >= exact.best_score, "seed {seed}");
            if warp.best_score == exact.best_score {
                equal += 1;
            }
        }
        assert!(
            equal as f64 / total as f64 > 0.9,
            "only {equal}/{total} matched the exact engine"
        );
    }

    #[test]
    fn executor_traceback_rescores_to_best() {
        let sc = scoring();
        let mut rng = SmallRng::seed_from_u64(7);
        let t = random_codes(180, 0.5, &mut rng);
        let mut q = t.clone();
        q.splice(60..63, []); // 3-bp deletion
        let insp = run(&t, &q, &inspector_cfg());
        let exec_cfg = WarpConfig::executor(&OptFlags::fastz(), insp.best_i, insp.best_j);
        let exec = run(&t, &q, &exec_cfg);
        assert_eq!(
            exec.best_score, insp.best_score,
            "trimming changed the optimum"
        );
        assert_eq!((exec.best_i, exec.best_j), (insp.best_i, insp.best_j));
        let ops = exec.ops.unwrap();
        // Re-score the edit script.
        let (mut ti, mut qi, mut score) = (0usize, 0usize, 0i32);
        for op in &ops {
            match *op {
                EditOp::Diag(k) => {
                    for _ in 0..k {
                        score += sc.subst.score(t[ti], q[qi]);
                        ti += 1;
                        qi += 1;
                    }
                }
                EditOp::GapQ(k) => {
                    score -= sc.gaps.gap_cost(k as usize);
                    ti += k as usize;
                }
                EditOp::GapT(k) => {
                    score -= sc.gaps.gap_cost(k as usize);
                    qi += k as usize;
                }
            }
        }
        assert_eq!((ti, qi), (exec.best_j, exec.best_i));
        assert_eq!(score, exec.best_score);
    }

    #[test]
    fn eager_window_only_fires_for_short_alignments() {
        // 8-bp homology then garbage: optimum at (8, 8) fits the window.
        let mut t = codes(b"ACGTACGT");
        let mut q = t.clone();
        t.extend(codes(&[b'C'; 100]));
        q.extend(codes(&[b'G'; 100]));
        let r = run(&t, &q, &inspector_cfg());
        assert_eq!(r.best_score, 80);
        assert_eq!(r.eager_ops.unwrap(), vec![EditOp::Diag(8)]);

        // 20-bp homology: outside the 16×16 window.
        let mut t = codes(&b"ACGT".repeat(5));
        let mut q = t.clone();
        t.extend(codes(&[b'C'; 100]));
        q.extend(codes(&[b'G'; 100]));
        let r = run(&t, &q, &inspector_cfg());
        assert_eq!(r.best_score, 200);
        assert!(r.eager_ops.is_none());
    }

    #[test]
    fn cyclic_buffers_cut_score_traffic_but_not_results() {
        let mut rng = SmallRng::seed_from_u64(9);
        let t = random_codes(400, 0.5, &mut rng);
        let with = run(&t, &t, &inspector_cfg());
        let without_cfg = WarpConfig {
            cyclic_buffers: false,
            ..inspector_cfg()
        };
        let without = run(&t, &t, &without_cfg);
        assert_eq!(with.best_score, without.best_score);
        assert_eq!(with.counters.cells, without.counters.cells);
        assert!(
            without.counters.global_written > 20 * with.counters.global_written,
            "cyclic {} vs naive {}",
            with.counters.global_written,
            without.counters.global_written
        );
    }

    #[test]
    fn ydrop_terminates_search_in_garbage() {
        let mut rng = SmallRng::seed_from_u64(11);
        let t = random_codes(4000, 0.5, &mut rng);
        let q = random_codes(4000, 0.5, &mut rng);
        let r = run(&t, &q, &inspector_cfg());
        assert!(
            r.counters.cells < 3_000_000,
            "explored {} cells of unrelated sequence",
            r.counters.cells
        );
    }

    #[test]
    fn trimmed_executor_computes_fewer_cells() {
        // Short homology inside long junk: the inspector searches far, the
        // trimmed executor recomputes only the optimal rectangle.
        let mut t = codes(&b"ACGT".repeat(10));
        let mut q = t.clone();
        let mut rng = SmallRng::seed_from_u64(13);
        t.extend(random_codes(2000, 0.5, &mut rng));
        q.extend(random_codes(2000, 0.5, &mut rng));
        let insp = run(&t, &q, &inspector_cfg());
        // The optimum is the planted 40-bp homology, give or take a few
        // coincidental tail matches (the tails are random data).
        assert!(
            insp.best_i >= 40 && insp.best_i < 60 && insp.best_j >= 40 && insp.best_j < 60,
            "optimum ({}, {}) far from the planted homology",
            insp.best_i,
            insp.best_j
        );
        let trimmed = run(
            &t,
            &q,
            &WarpConfig::executor(&OptFlags::fastz(), insp.best_i, insp.best_j),
        );
        let untrimmed = run(
            &t,
            &q,
            &WarpConfig::executor(&OptFlags::with_eager(), insp.best_i, insp.best_j),
        );
        assert_eq!(trimmed.best_score, untrimmed.best_score);
        assert!(
            trimmed.counters.cells * 4 < untrimmed.counters.cells,
            "trimmed {} vs untrimmed {}",
            trimmed.counters.cells,
            untrimmed.counters.cells
        );
    }

    #[test]
    fn counters_account_steps_and_cells() {
        let t = codes(b"ACGTACGTACGTACGTACGT");
        let r = run(&t, &t, &inspector_cfg());
        assert!(r.counters.steps > 0);
        assert!(r.counters.cells >= 20);
        assert_eq!(r.counters.alu_ops, r.counters.steps * 9 * 32);
        assert!(r.counters.shuffles >= 3 * r.counters.steps);
    }

    #[test]
    fn simd_backend_is_bit_identical_to_the_interpreter() {
        // The engine's hard contract: backend choice changes host
        // wall-clock only. Optimum, edit scripts, counters (hence modeled
        // GPU time), and explored extents must match exactly, across
        // strip widths and in both inspector and executor modes.
        let sc = scoring();
        for seed in 0..10u64 {
            let mut rng = SmallRng::seed_from_u64(3000 + seed);
            let t = random_codes(260, 0.5, &mut rng);
            let mut q = t.clone();
            for b in q.iter_mut() {
                if rng.gen_bool(0.06) {
                    *b = (*b + 1 + rng.gen_range(0..3)) % 4;
                }
            }
            let cut = rng.gen_range(40..200);
            q.splice(cut..cut + 2, []);
            for width in [1usize, 2, 7, 31, 32] {
                let icfg = inspector_cfg().with_strip_width(width);
                let a = run(&t, &q, &icfg);
                let b = run(&t, &q, &icfg.with_backend(WavefrontBackend::Simd));
                let ctx = format!("seed {seed} width {width}");
                assert_eq!(a.best_score, b.best_score, "{ctx}");
                assert_eq!((a.best_i, a.best_j), (b.best_i, b.best_j), "{ctx}");
                assert_eq!(a.eager_ops, b.eager_ops, "{ctx}");
                assert_eq!(a.counters, b.counters, "{ctx}");
                assert_eq!(
                    (a.explored_rows, a.explored_cols),
                    (b.explored_rows, b.explored_cols),
                    "{ctx}"
                );

                let ecfg = WarpConfig::executor(&OptFlags::fastz(), a.best_i, a.best_j)
                    .with_strip_width(width);
                let ea = run(&t, &q, &ecfg);
                let eb = run(&t, &q, &ecfg.with_backend(WavefrontBackend::Simd));
                assert_eq!(ea.ops, eb.ops, "{ctx} (executor)");
                assert_eq!(ea.counters, eb.counters, "{ctx} (executor)");
            }
        }
        // Cell-for-cell: every live cell both backends report to a trace
        // sink must agree in position and all three scores.
        let mut rng = SmallRng::seed_from_u64(77);
        let t = random_codes(150, 0.5, &mut rng);
        let mut q = t.clone();
        q.splice(70..72, []);
        let mut shared = SharedMem::for_device(&fastz_gpu_sim::DeviceSpec::rtx3080_ampere());
        let mut trace_a = fastz_align::DenseTrace::default();
        warp_extend_traced(&t, &q, &sc, &inspector_cfg(), &mut shared, &mut trace_a);
        let mut shared = SharedMem::for_device(&fastz_gpu_sim::DeviceSpec::rtx3080_ampere());
        let mut trace_b = fastz_align::DenseTrace::default();
        warp_extend_traced(
            &t,
            &q,
            &sc,
            &inspector_cfg().with_backend(WavefrontBackend::Simd),
            &mut shared,
            &mut trace_b,
        );
        assert_eq!(trace_a.cells, trace_b.cells);
    }
}
