//! The diagonal data-layout transformation (paper Fig. 4, after Xiao,
//! Aji & Feng [38]).
//!
//! DP cells along an anti-diagonal are computed together by the lanes of
//! a warp, but in the natural row-major layout those cells are strided by
//! `row_len − 1`, so their memory accesses cannot coalesce. The transform
//! `i' = i + j, j' = j` places each anti-diagonal in a contiguous row of
//! the transformed matrix (at the cost of triangular padding at the
//! corners). The warp engine uses this addressing for every spilled or
//! stored value; this module exposes the mapping itself plus the padding
//! arithmetic the paper mentions.

/// The transformed coordinates of logical cell `(i, j)`.
#[inline]
pub fn to_diagonal(i: usize, j: usize) -> (usize, usize) {
    (i + j, j)
}

/// The logical coordinates of transformed cell `(d, j)`;
/// `None` if `d < j` (padding).
#[inline]
pub fn from_diagonal(d: usize, j: usize) -> Option<(usize, usize)> {
    (d >= j).then(|| (d - j, j))
}

/// Shape of a transformed matrix for an `(rows × cols)` logical matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiagonalShape {
    /// Logical rows (query extent + 1).
    pub rows: usize,
    /// Logical cols (target extent + 1).
    pub cols: usize,
}

impl DiagonalShape {
    /// Number of anti-diagonals (`rows + cols − 1`), i.e. transformed rows.
    pub fn diagonals(&self) -> usize {
        if self.rows == 0 || self.cols == 0 {
            0
        } else {
            self.rows + self.cols - 1
        }
    }

    /// Cells in the logical matrix.
    pub fn logical_cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Cells in the rectangular transformed allocation
    /// (`diagonals × cols`).
    pub fn transformed_cells(&self) -> usize {
        self.diagonals() * self.cols
    }

    /// Padding cells introduced by the transform — the "small increase in
    /// memory footprint" of paper §2.2.
    pub fn padding_cells(&self) -> usize {
        self.transformed_cells() - self.logical_cells()
    }

    /// Length of anti-diagonal `d` (cells with `i + j == d`).
    pub fn diagonal_len(&self, d: usize) -> usize {
        if self.rows == 0 || self.cols == 0 || d >= self.diagonals() {
            return 0;
        }
        let lo = d.saturating_sub(self.rows - 1);
        let hi = d.min(self.cols - 1);
        hi - lo + 1
    }
}

/// Flat index of logical `(i, j)` within a row-major transformed
/// allocation of `shape`.
#[inline]
pub fn transformed_index(shape: &DiagonalShape, i: usize, j: usize) -> usize {
    let (d, jj) = to_diagonal(i, j);
    d * shape.cols + jj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_invertible() {
        for i in 0..20 {
            for j in 0..20 {
                let (d, jj) = to_diagonal(i, j);
                assert_eq!(from_diagonal(d, jj), Some((i, j)));
            }
        }
        assert_eq!(from_diagonal(3, 5), None);
    }

    #[test]
    fn anti_diagonal_cells_are_contiguous() {
        // All logical cells with i + j = d map to transformed row d with
        // consecutive j' — the coalescing property.
        let shape = DiagonalShape { rows: 8, cols: 8 };
        let d = 5;
        let idxs: Vec<usize> = (0..=d)
            .map(|j| transformed_index(&shape, d - j, j))
            .collect();
        for w in idxs.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn row_major_neighbours_are_not_contiguous_without_transform() {
        // The problem the transform solves: in row-major order, two
        // adjacent anti-diagonal cells are `cols - 1` apart.
        let cols = 100usize;
        let idx = |i: usize, j: usize| i * cols + j;
        assert_eq!(idx(5, 5) - idx(4, 6), cols - 1);
    }

    #[test]
    fn shape_arithmetic() {
        let s = DiagonalShape { rows: 4, cols: 6 };
        assert_eq!(s.diagonals(), 9);
        assert_eq!(s.logical_cells(), 24);
        assert_eq!(s.transformed_cells(), 54);
        assert_eq!(s.padding_cells(), 30);
    }

    #[test]
    fn diagonal_lengths_sum_to_logical_cells() {
        let s = DiagonalShape { rows: 7, cols: 11 };
        let total: usize = (0..s.diagonals()).map(|d| s.diagonal_len(d)).sum();
        assert_eq!(total, s.logical_cells());
        assert_eq!(s.diagonal_len(0), 1);
        assert_eq!(s.diagonal_len(s.diagonals() - 1), 1);
        assert_eq!(s.diagonal_len(6), 7.min(s.cols));
    }

    #[test]
    fn empty_shapes() {
        let s = DiagonalShape { rows: 0, cols: 5 };
        assert_eq!(s.diagonals(), 0);
        assert_eq!(s.diagonal_len(0), 0);
    }
}
