//! Translation of measured warp counters into timing-model tasks.
//!
//! One place defines how a warp task's measured work becomes cycles and
//! DRAM bytes, so the inspector, executor, and ablation configurations
//! all price work identically.

use fastz_gpu_sim::model::{CYCLES_PER_STEP, TASK_SETUP_CYCLES};
use fastz_gpu_sim::{WarpCounters, WarpTask};

/// Cycles per traceback step: a single-lane pointer chase through the
/// packed traceback (dependent byte load + decode per step, §3.1.3's
/// "one thread of the same warp").
pub const TB_WALK_CYCLES_PER_STEP: f64 = 8.0;

/// Instruction overhead factor per wavefront step beyond the paper's
/// 9-op recurrence count: three register shuffles, spill/boundary
/// address arithmetic, predicate evaluation for the y-drop test, the
/// traceback byte pack, and loop control. The §6 analysis counts only
/// the recurrence operations; a real kernel issues roughly 4× that.
pub const STEP_OVERHEAD_FACTOR: f64 = 4.0;

/// Prices one inspector or executor DP task.
///
/// * compute: every wavefront step issues the recurrences' 23 derated
///   instructions warp-wide, plus a fixed task setup;
/// * memory: whatever global traffic the functional run recorded (score
///   spills, traceback bytes) — the counters already reflect the
///   cyclic-buffer and eager-traceback settings;
/// * the traceback walk (scalar_ops) serializes on one lane.
pub fn price_task(c: &WarpCounters) -> WarpTask {
    let cycles = c.steps as f64 * CYCLES_PER_STEP * STEP_OVERHEAD_FACTOR
        + c.scalar_ops as f64 * TB_WALK_CYCLES_PER_STEP
        + TASK_SETUP_CYCLES;
    WarpTask {
        cycles,
        dram_bytes: (c.global_read + c.global_written) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pricing_is_linear_in_steps() {
        let c1 = WarpCounters {
            steps: 100,
            ..WarpCounters::default()
        };
        let c2 = WarpCounters {
            steps: 200,
            ..WarpCounters::default()
        };
        let t1 = price_task(&c1).cycles - TASK_SETUP_CYCLES;
        let t2 = price_task(&c2).cycles - TASK_SETUP_CYCLES;
        assert!((t1 - 100.0 * CYCLES_PER_STEP * STEP_OVERHEAD_FACTOR).abs() < 1e-9);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn traceback_walk_adds_serial_cycles() {
        let plain = WarpCounters {
            steps: 100,
            ..WarpCounters::default()
        };
        let with_walk = WarpCounters {
            steps: 100,
            scalar_ops: 500,
            ..WarpCounters::default()
        };
        assert!(price_task(&with_walk).cycles > price_task(&plain).cycles);
    }

    #[test]
    fn dram_bytes_pass_through() {
        let c = WarpCounters {
            global_read: 100,
            global_written: 200,
            ..WarpCounters::default()
        };
        assert_eq!(price_task(&c).dram_bytes, 300.0);
    }
}
