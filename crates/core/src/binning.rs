//! Alignment-length binning (paper §3.3 and Table 2).
//!
//! The executor groups surviving seed extensions into four size bins
//! (512 / 2048 / 8192 / 32768) and launches one kernel per bin, so that
//! long and short alignments never share a bulk-synchronous kernel.
//! Alignments of 16 bp or less never reach the executor at all (eager
//! traceback); Table 2 reports exactly this classification over the
//! benchmark seeds.

/// The eager-traceback boundary: alignments whose optimal cell lies
/// within a 16×16 window finish in the inspector.
pub const EAGER_BOUND: usize = 16;

/// Executor bin upper bounds (inclusive), paper §3.3.
pub const BIN_BOUNDS: [usize; 4] = [512, 2048, 8192, 32768];

/// Classification of one seed extension by its optimal-alignment extent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinClass {
    /// ≤ 16 bp: handled by eager traceback.
    Eager,
    /// Executor bin `0..=3` (≤512, ≤2048, ≤8192, ≤32768).
    Bin(usize),
    /// Larger than the largest bin (the paper's benchmarks never need
    /// this; ours keeps it explicit instead of silently clamping).
    Overflow,
}

/// Classifies an optimal-alignment extent (the larger of the two
/// sequence extents, per §3.3's "smallest bin in which the alignment is
/// contained").
pub fn classify(extent: usize) -> BinClass {
    if extent <= EAGER_BOUND {
        return BinClass::Eager;
    }
    for (idx, &bound) in BIN_BOUNDS.iter().enumerate() {
        if extent <= bound {
            return BinClass::Bin(idx);
        }
    }
    BinClass::Overflow
}

/// The matrix dimension the executor allocates for a bin (its upper
/// bound; precise per-bin allocation is the point of §3.1.3).
pub fn bin_allocation(class: BinClass) -> usize {
    match class {
        BinClass::Eager => EAGER_BOUND,
        BinClass::Bin(i) => BIN_BOUNDS[i],
        BinClass::Overflow => BIN_BOUNDS[BIN_BOUNDS.len() - 1] * 4, // §3.3: 4× scaling
    }
}

/// Table 2-style counts of seed extensions per class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BinCounts {
    /// Seeds finished by eager traceback (≤ 16 bp).
    pub eager: usize,
    /// Seeds per executor bin.
    pub bins: [usize; 4],
    /// Seeds exceeding the largest bin.
    pub overflow: usize,
}

impl BinCounts {
    /// Records one seed's classification.
    pub fn record(&mut self, class: BinClass) {
        match class {
            BinClass::Eager => self.eager += 1,
            BinClass::Bin(i) => self.bins[i] += 1,
            BinClass::Overflow => self.overflow += 1,
        }
    }

    /// Total seeds recorded.
    pub fn total(&self) -> usize {
        self.eager + self.bins.iter().sum::<usize>() + self.overflow
    }

    /// Fraction of seeds in the eager class (the paper's 75-80 %).
    pub fn eager_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.eager as f64 / self.total() as f64
        }
    }

    /// Emits one `fastz_bin_seeds_total{bin="…"}` counter per class
    /// (`eager`, each bound, `overflow`) — all six series always present
    /// so the exported set is stable across workloads.
    pub fn record_into<S: fastz_obs::MetricsSink>(&self, sink: &mut S) {
        sink.counter_add(&fastz_obs::names::bin("eager"), self.eager as u64);
        for (idx, &bound) in BIN_BOUNDS.iter().enumerate() {
            sink.counter_add(
                &fastz_obs::names::bin(&bound.to_string()),
                self.bins[idx] as u64,
            );
        }
        sink.counter_add(&fastz_obs::names::bin("overflow"), self.overflow as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_boundaries() {
        assert_eq!(classify(0), BinClass::Eager);
        assert_eq!(classify(16), BinClass::Eager);
        assert_eq!(classify(17), BinClass::Bin(0));
        assert_eq!(classify(512), BinClass::Bin(0));
        assert_eq!(classify(513), BinClass::Bin(1));
        assert_eq!(classify(2048), BinClass::Bin(1));
        assert_eq!(classify(2049), BinClass::Bin(2));
        assert_eq!(classify(8192), BinClass::Bin(2));
        assert_eq!(classify(8193), BinClass::Bin(3));
        assert_eq!(classify(32768), BinClass::Bin(3));
        assert_eq!(classify(32769), BinClass::Overflow);
    }

    /// The warp and SIMD paths both pad work to 32-lane multiples.
    /// Classification happens on the raw optimal extent *before* any
    /// padding (`pipeline.rs` calls `classify(r.extent())`), and every
    /// executor bound is itself a multiple of the warp width — so even
    /// if a padded length were classified, an extent landing exactly on
    /// 512/2048/8192/32768 (or anywhere else past the eager window)
    /// could never cross a bin edge. Pinned here so a future bound
    /// change that breaks the alignment fails loudly. (The interpreter
    /// and SIMD backends classify identically by construction — they
    /// share this code and the pipeline's backend-invariance test
    /// compares `bin_counts` across backends directly.)
    #[test]
    fn warp_aligned_padding_never_changes_the_bin() {
        for &bound in &BIN_BOUNDS {
            assert_eq!(bound % 32, 0, "bound {bound} is not warp-aligned");
        }
        let pad32 = |e: usize| (e + 31) & !31;
        for extent in (EAGER_BOUND + 1)..=(BIN_BOUNDS[3] + 64) {
            assert_eq!(
                classify(pad32(extent)),
                classify(extent),
                "extent {extent} changes bin when padded to {}",
                pad32(extent)
            );
        }
    }

    /// Executor allocations are whole warps: the matrix dimension the
    /// bin reserves divides evenly into 32-lane strips, so the last
    /// strip of a bin-boundary problem is full, not ragged.
    #[test]
    fn executor_allocations_are_warp_aligned() {
        for i in 0..BIN_BOUNDS.len() {
            assert_eq!(bin_allocation(BinClass::Bin(i)) % 32, 0, "bin {i}");
        }
        assert_eq!(bin_allocation(BinClass::Overflow) % 32, 0);
    }

    #[test]
    fn bins_scale_by_4x() {
        // §3.3: bin boundaries use a 4× scaling factor.
        for w in BIN_BOUNDS.windows(2) {
            assert_eq!(w[1], w[0] * 4);
        }
        assert_eq!(bin_allocation(BinClass::Overflow), 32768 * 4);
    }

    #[test]
    fn allocation_covers_class() {
        for extent in [1, 16, 17, 100, 513, 5000, 9000, 32768] {
            let class = classify(extent);
            assert!(bin_allocation(class) >= extent, "extent {extent}");
        }
    }

    #[test]
    fn counts_partition_totality() {
        let mut c = BinCounts::default();
        for extent in 0..40_000 {
            c.record(classify(extent));
        }
        assert_eq!(c.total(), 40_000);
        assert_eq!(c.eager, 17);
        assert_eq!(c.bins[0], 512 - 16);
        assert_eq!(c.overflow, 40_000 - 32_769);
    }

    #[test]
    fn eager_fraction_math() {
        let mut c = BinCounts::default();
        for _ in 0..80 {
            c.record(BinClass::Eager);
        }
        for _ in 0..20 {
            c.record(BinClass::Bin(0));
        }
        assert!((c.eager_fraction() - 0.8).abs() < 1e-12);
        assert_eq!(BinCounts::default().eager_fraction(), 0.0);
    }
}
