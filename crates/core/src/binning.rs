//! Alignment-length binning (paper §3.3 and Table 2).
//!
//! The executor groups surviving seed extensions into four size bins
//! (512 / 2048 / 8192 / 32768) and launches one kernel per bin, so that
//! long and short alignments never share a bulk-synchronous kernel.
//! Alignments of 16 bp or less never reach the executor at all (eager
//! traceback); Table 2 reports exactly this classification over the
//! benchmark seeds.
//!
//! Under the alignment service (`fastz-serve`) the same binning becomes
//! a *cross-request* scheduler: [`BinPacker`] merges request-tagged
//! executor tasks from concurrent requests into shared per-bin launches,
//! so traffic that would leave each request's bins ragged instead fills
//! them. Merging only re-groups *modeled kernel launches* — each
//! request's functional results and per-request timing are computed from
//! its own position-keyed work counters, so a request's report is
//! bit-identical whether it was served solo or co-batched.

use fastz_gpu_sim::{BlockResources, KernelSpec, WarpTask};

/// The eager-traceback boundary: alignments whose optimal cell lies
/// within a 16×16 window finish in the inspector.
pub const EAGER_BOUND: usize = 16;

/// Executor bin upper bounds (inclusive), paper §3.3.
pub const BIN_BOUNDS: [usize; 4] = [512, 2048, 8192, 32768];

/// Classification of one seed extension by its optimal-alignment extent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinClass {
    /// ≤ 16 bp: handled by eager traceback.
    Eager,
    /// Executor bin `0..=3` (≤512, ≤2048, ≤8192, ≤32768).
    Bin(usize),
    /// Larger than the largest bin (the paper's benchmarks never need
    /// this; ours keeps it explicit instead of silently clamping).
    Overflow,
}

/// Classifies an optimal-alignment extent (the larger of the two
/// sequence extents, per §3.3's "smallest bin in which the alignment is
/// contained").
pub fn classify(extent: usize) -> BinClass {
    if extent <= EAGER_BOUND {
        return BinClass::Eager;
    }
    for (idx, &bound) in BIN_BOUNDS.iter().enumerate() {
        if extent <= bound {
            return BinClass::Bin(idx);
        }
    }
    BinClass::Overflow
}

/// The matrix dimension the executor allocates for a bin (its upper
/// bound; precise per-bin allocation is the point of §3.1.3).
pub fn bin_allocation(class: BinClass) -> usize {
    match class {
        BinClass::Eager => EAGER_BOUND,
        BinClass::Bin(i) => BIN_BOUNDS[i],
        BinClass::Overflow => BIN_BOUNDS[BIN_BOUNDS.len() - 1] * 4, // §3.3: 4× scaling
    }
}

/// Table 2-style counts of seed extensions per class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BinCounts {
    /// Seeds finished by eager traceback (≤ 16 bp).
    pub eager: usize,
    /// Seeds per executor bin.
    pub bins: [usize; 4],
    /// Seeds exceeding the largest bin.
    pub overflow: usize,
}

impl BinCounts {
    /// Records one seed's classification.
    pub fn record(&mut self, class: BinClass) {
        match class {
            BinClass::Eager => self.eager += 1,
            BinClass::Bin(i) => self.bins[i] += 1,
            BinClass::Overflow => self.overflow += 1,
        }
    }

    /// Total seeds recorded.
    pub fn total(&self) -> usize {
        self.eager + self.bins.iter().sum::<usize>() + self.overflow
    }

    /// Fraction of seeds in the eager class (the paper's 75-80 %).
    pub fn eager_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.eager as f64 / self.total() as f64
        }
    }

    /// Emits one `fastz_bin_seeds_total{bin="…"}` counter per class
    /// (`eager`, each bound, `overflow`) — all six series always present
    /// so the exported set is stable across workloads.
    pub fn record_into<S: fastz_obs::MetricsSink>(&self, sink: &mut S) {
        sink.counter_add(&fastz_obs::names::bin("eager"), self.eager as u64);
        for (idx, &bound) in BIN_BOUNDS.iter().enumerate() {
            sink.counter_add(
                &fastz_obs::names::bin(&bound.to_string()),
                self.bins[idx] as u64,
            );
        }
        sink.counter_add(&fastz_obs::names::bin("overflow"), self.overflow as u64);
    }
}

// ---------------------------------------------------------------------------
// Cross-request bin packing (the service-side scheduler)
// ---------------------------------------------------------------------------

/// Number of executor bin slots (slot 0 = eager-sized problems run with
/// the eager flag off, then the four §3.3 bins, then overflow) — the
/// same slot space `FastZReport::executor_bin_slots` uses.
pub const BIN_SLOTS: usize = BIN_BOUNDS.len() + 2;

/// One executor task tagged with the request it belongs to, so a merged
/// launch can be demultiplexed back to per-request attribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaggedTask {
    /// The originating request.
    pub request: u64,
    /// Executor bin slot (see [`BIN_SLOTS`]).
    pub slot: usize,
    /// The priced task.
    pub task: WarpTask,
}

/// Per-slot membership of one merged launch: which requests contributed
/// how many tasks (sorted by request id — deterministic regardless of
/// push order *within* a request, preserving cross-request push order).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LaunchDemux {
    /// `(request, task count)` pairs for one merged kernel.
    pub shares: Vec<(u64, usize)>,
}

/// A merged cross-request launch schedule for one executor bin slot.
#[derive(Clone, Debug)]
pub struct MergedLaunch {
    /// Bin slot this kernel serves.
    pub slot: usize,
    /// The merged kernel (tasks from every contributing request, in
    /// arrival order).
    pub kernel: KernelSpec,
    /// Which request contributed which tasks.
    pub demux: LaunchDemux,
    /// Occupied fraction of the launch batch, in (0, 1].
    pub fill: f64,
}

/// Merges request-tagged executor tasks from concurrent requests into
/// shared per-bin kernel launches of at most `batch` tasks each.
///
/// Tasks keep arrival order within a slot, so the schedule is a pure
/// function of the submission sequence — never of host threading. The
/// packer schedules *modeled* launches only: it moves no functional
/// work, so per-request results cannot be affected by who shared a bin.
#[derive(Clone, Debug)]
pub struct BinPacker {
    batch: usize,
    slots: [Vec<TaggedTask>; BIN_SLOTS],
}

impl BinPacker {
    /// An empty packer with the given launch batch size (clamped ≥ 1).
    pub fn new(batch: usize) -> BinPacker {
        BinPacker {
            batch: batch.max(1),
            slots: Default::default(),
        }
    }

    /// Adds one request-tagged task to its bin. Out-of-range slots panic
    /// — the slot space is fixed by [`BIN_SLOTS`].
    pub fn push(&mut self, t: TaggedTask) {
        self.slots[t.slot].push(t);
    }

    /// Adds every executor task of one request's report, tagged with
    /// `request`. `kernels` and `slots` are the report's parallel
    /// `executor_kernels` / `executor_bin_slots` vectors.
    pub fn push_report(&mut self, request: u64, kernels: &[KernelSpec], slots: &[usize]) {
        debug_assert_eq!(kernels.len(), slots.len());
        for (kernel, &slot) in kernels.iter().zip(slots) {
            for &task in &kernel.tasks {
                self.push(TaggedTask {
                    request,
                    slot,
                    task,
                });
            }
        }
    }

    /// Total tasks currently packed.
    pub fn len(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// True when no task has been packed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Emits the merged launch schedule: per slot, tasks are chunked
    /// into kernels of at most the batch size; every kernel carries its
    /// per-request demux and fill ratio. Consumes the packed tasks.
    pub fn launches(&mut self, resources: BlockResources) -> Vec<MergedLaunch> {
        let mut out = Vec::new();
        for (slot, tasks) in self.slots.iter_mut().enumerate() {
            if tasks.is_empty() {
                continue;
            }
            for (b, chunk) in tasks.chunks(self.batch).enumerate() {
                let mut shares: Vec<(u64, usize)> = Vec::new();
                for t in chunk {
                    match shares.iter_mut().find(|(r, _)| *r == t.request) {
                        Some((_, n)) => *n += 1,
                        None => shares.push((t.request, 1)),
                    }
                }
                shares.sort_unstable();
                out.push(MergedLaunch {
                    slot,
                    kernel: KernelSpec::new(
                        format!("serve-bin{slot}-{b}"),
                        chunk.iter().map(|t| t.task).collect(),
                        resources,
                    ),
                    demux: LaunchDemux { shares },
                    fill: chunk.len() as f64 / self.batch as f64,
                });
            }
            tasks.clear();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_boundaries() {
        assert_eq!(classify(0), BinClass::Eager);
        assert_eq!(classify(16), BinClass::Eager);
        assert_eq!(classify(17), BinClass::Bin(0));
        assert_eq!(classify(512), BinClass::Bin(0));
        assert_eq!(classify(513), BinClass::Bin(1));
        assert_eq!(classify(2048), BinClass::Bin(1));
        assert_eq!(classify(2049), BinClass::Bin(2));
        assert_eq!(classify(8192), BinClass::Bin(2));
        assert_eq!(classify(8193), BinClass::Bin(3));
        assert_eq!(classify(32768), BinClass::Bin(3));
        assert_eq!(classify(32769), BinClass::Overflow);
    }

    /// The warp and SIMD paths both pad work to 32-lane multiples.
    /// Classification happens on the raw optimal extent *before* any
    /// padding (`pipeline.rs` calls `classify(r.extent())`), and every
    /// executor bound is itself a multiple of the warp width — so even
    /// if a padded length were classified, an extent landing exactly on
    /// 512/2048/8192/32768 (or anywhere else past the eager window)
    /// could never cross a bin edge. Pinned here so a future bound
    /// change that breaks the alignment fails loudly. (The interpreter
    /// and SIMD backends classify identically by construction — they
    /// share this code and the pipeline's backend-invariance test
    /// compares `bin_counts` across backends directly.)
    #[test]
    fn warp_aligned_padding_never_changes_the_bin() {
        for &bound in &BIN_BOUNDS {
            assert_eq!(bound % 32, 0, "bound {bound} is not warp-aligned");
        }
        let pad32 = |e: usize| (e + 31) & !31;
        for extent in (EAGER_BOUND + 1)..=(BIN_BOUNDS[3] + 64) {
            assert_eq!(
                classify(pad32(extent)),
                classify(extent),
                "extent {extent} changes bin when padded to {}",
                pad32(extent)
            );
        }
    }

    /// Executor allocations are whole warps: the matrix dimension the
    /// bin reserves divides evenly into 32-lane strips, so the last
    /// strip of a bin-boundary problem is full, not ragged.
    #[test]
    fn executor_allocations_are_warp_aligned() {
        for i in 0..BIN_BOUNDS.len() {
            assert_eq!(bin_allocation(BinClass::Bin(i)) % 32, 0, "bin {i}");
        }
        assert_eq!(bin_allocation(BinClass::Overflow) % 32, 0);
    }

    #[test]
    fn bins_scale_by_4x() {
        // §3.3: bin boundaries use a 4× scaling factor.
        for w in BIN_BOUNDS.windows(2) {
            assert_eq!(w[1], w[0] * 4);
        }
        assert_eq!(bin_allocation(BinClass::Overflow), 32768 * 4);
    }

    #[test]
    fn allocation_covers_class() {
        for extent in [1, 16, 17, 100, 513, 5000, 9000, 32768] {
            let class = classify(extent);
            assert!(bin_allocation(class) >= extent, "extent {extent}");
        }
    }

    #[test]
    fn counts_partition_totality() {
        let mut c = BinCounts::default();
        for extent in 0..40_000 {
            c.record(classify(extent));
        }
        assert_eq!(c.total(), 40_000);
        assert_eq!(c.eager, 17);
        assert_eq!(c.bins[0], 512 - 16);
        assert_eq!(c.overflow, 40_000 - 32_769);
    }

    fn task(cycles: f64) -> WarpTask {
        WarpTask {
            cycles,
            dram_bytes: 0.0,
        }
    }

    #[test]
    fn packer_merges_requests_and_demuxes() {
        let mut p = BinPacker::new(4);
        // Request 1: three bin-1 tasks; request 2: two bin-1, one bin-3.
        for k in 0..3 {
            p.push(TaggedTask {
                request: 1,
                slot: 1,
                task: task(k as f64),
            });
        }
        for k in 0..2 {
            p.push(TaggedTask {
                request: 2,
                slot: 1,
                task: task(10.0 + k as f64),
            });
        }
        p.push(TaggedTask {
            request: 2,
            slot: 3,
            task: task(99.0),
        });
        assert_eq!(p.len(), 6);
        let launches = p.launches(BlockResources::fastz_executor());
        assert!(p.is_empty(), "launches drains the packer");
        // Bin 1: 5 tasks over batch 4 ⇒ two kernels (4 + 1); bin 3: one.
        assert_eq!(launches.len(), 3);
        let b1: Vec<_> = launches.iter().filter(|l| l.slot == 1).collect();
        assert_eq!(b1.len(), 2);
        assert_eq!(b1[0].kernel.tasks.len(), 4);
        assert_eq!(b1[0].demux.shares, vec![(1, 3), (2, 1)]);
        assert!((b1[0].fill - 1.0).abs() < 1e-12);
        assert_eq!(b1[1].demux.shares, vec![(2, 1)]);
        assert!((b1[1].fill - 0.25).abs() < 1e-12);
        // Tasks keep arrival order: request 1's three, then request 2's.
        let cycles: Vec<f64> = b1[0].kernel.tasks.iter().map(|t| t.cycles).collect();
        assert_eq!(cycles, vec![0.0, 1.0, 2.0, 10.0]);
        // Every packed task landed in exactly one launch.
        let total: usize = launches.iter().map(|l| l.kernel.tasks.len()).sum();
        assert_eq!(total, 6);
        let demuxed: usize = launches
            .iter()
            .flat_map(|l| l.demux.shares.iter().map(|&(_, n)| n))
            .sum();
        assert_eq!(demuxed, 6);
    }

    #[test]
    fn packer_batch_is_clamped_and_empty_slots_skipped() {
        let mut p = BinPacker::new(0);
        p.push(TaggedTask {
            request: 7,
            slot: 0,
            task: task(1.0),
        });
        let launches = p.launches(BlockResources::fastz_executor());
        assert_eq!(launches.len(), 1, "batch 0 clamps to 1");
        assert_eq!(launches[0].slot, 0);
        assert!((launches[0].fill - 1.0).abs() < 1e-12);
        assert!(BinPacker::new(8)
            .launches(BlockResources::fastz_executor())
            .is_empty());
    }

    #[test]
    fn eager_fraction_math() {
        let mut c = BinCounts::default();
        for _ in 0..80 {
            c.record(BinClass::Eager);
        }
        for _ in 0..20 {
            c.record(BinClass::Bin(0));
        }
        assert!((c.eager_fraction() - 0.8).abs() < 1e-12);
        assert_eq!(BinCounts::default().eager_fraction(), 0.0);
    }
}
