//! The FastZ pipeline: inspector → eager traceback → length binning →
//! trimmed executor → splice (paper §3).
//!
//! The pipeline runs *functionally* on the GPU simulator's warp
//! primitives — it produces real alignments, verified against the scalar
//! LASTZ engines — while every warp task's measured work is priced into
//! the timing model (`gpu-sim`). The host-side functional simulation is
//! parallelized over CPU threads purely to make the simulation fast;
//! modeled GPU time is unaffected by host thread count.

use crate::ablation::OptFlags;
use crate::binning::{classify, BinClass, BinCounts, BIN_BOUNDS};
use crate::bitvec::{bitvec_extend_in, BitvecConfig, BitvecExtension, BitvecStats, ExtendBackend};
use crate::cost::price_task;
use crate::pool::{HostDispatch, HostPool};
use crate::resilient::{
    combine_fingerprint, workload_fingerprint, Checkpoint, ResilienceConfig, ResilienceReport,
};
use crate::warp_engine::{warp_extend_in, WarpConfig, WarpExtension, WavefrontBackend};
use fastz_align::{push_op, Alignment, EditOp};
use fastz_genome::{Scoring, Sequence};
use fastz_gpu_sim::fault::{scope, FaultKind, FaultSite};
use fastz_gpu_sim::roofline;
use fastz_gpu_sim::stream::{time_stream_pipeline_capped, time_stream_pipeline_resilient};
use fastz_gpu_sim::{
    BlockResources, DeviceSpec, KernelCounters, KernelSpec, PhaseTimeline, SharedMem, WarpTask,
    WARP_SIZE,
};
use fastz_obs::{names, LogicalClock, MetricsSink, NoObs};
use fastz_seed::Anchor;
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Host-side modeling constants for the "other" phase of Figure 8
/// (reading anchors and sequences, host↔device copies, bin sorting,
/// copying eager-surviving anchors for the executor).
mod host {
    /// Effective PCIe copy bandwidth.
    pub const PCIE_BW: f64 = 12e9;
    /// Per-seed host bookkeeping (reading anchor records, classification,
    /// bin sorting, copying eager-surviving anchors and results) —
    /// calibrated so the Figure 8 "other" component is a visible minority
    /// share as in the paper.
    pub const PER_SEED_S: f64 = 500e-9;
    /// Per-run fixed setup (context, allocations).
    pub const FIXED_S: f64 = 2e-4;
}

/// FastZ pipeline configuration.
#[derive(Clone, Debug)]
pub struct FastZConfig {
    /// Scoring scheme (shared with the CPU baselines).
    pub scoring: Scoring,
    /// Optimization flags (ablation axis).
    pub flags: OptFlags,
    /// Device to model.
    pub device: DeviceSpec,
    /// Cap on one-sided extension reach (matches the scalar drivers).
    pub max_extension: usize,
    /// Warp tasks per inspector kernel launch.
    pub inspector_batch: usize,
    /// Host threads for the functional simulation (0 = all available).
    /// Affects host wall-clock only: alignments, bin counts, and
    /// modeled GPU time are bit-identical for every value.
    pub sim_threads: usize,
    /// How the host pool hands problems to its workers
    /// ([`HostDispatch::Stealing`] by default; [`HostDispatch::Static`]
    /// reproduces the legacy per-phase chunking as a baseline). Results
    /// are identical either way — only wall-clock changes.
    pub host_dispatch: HostDispatch,
    /// Lanes per strip in the warp engine, clamped to `1..=32`. The
    /// default is the full warp; width 1 runs the pipeline on the scalar
    /// engine, which the strip-width invariance property guarantees to
    /// produce identical alignments (the conformance metrics drill
    /// exercises exactly this).
    pub strip_width: usize,
    /// Host realization of the warp engine's per-step lane arithmetic
    /// (scalar interpreter or 32-wide host SIMD). Another wall-clock-only
    /// knob: alignments, bin counts, sanitizer findings, and modeled GPU
    /// time are bit-identical across backends, so the backend does not
    /// enter the checkpoint fingerprint.
    pub backend: WavefrontBackend,
    /// Attach a shadow sanitizer to every worker arena's scratchpad
    /// (initcheck, racecheck, bank-conflict analysis, warp lints).
    /// Off by default: the unattached path costs one null check per
    /// shared-memory access. Alignments, bin counts, and modeled GPU
    /// time are bit-identical either way — the sanitizer never touches
    /// the work counters.
    pub sanitize: bool,
    /// Extension algorithm. [`ExtendBackend::YDrop`] (the default) is
    /// the paper's affine-gap machinery; [`ExtendBackend::Bitvector`]
    /// swaps in the GenASM/Scrooge windowed edit-distance engine, which
    /// scores in the unit regime (`(i+j) − 3·ed`) and resolves every
    /// problem with a full traceback in the inspector phase (no
    /// executor residue). Unlike [`FastZConfig::backend`], this is a
    /// *semantic* switch — scores and alignments differ between
    /// algorithms, so it rides in the checkpoint fingerprint.
    pub extend_backend: ExtendBackend,
    /// Window geometry for the bitvector backend (ignored under y-drop).
    pub bitvec: BitvecConfig,
    /// Identity fingerprint of the persistent seed index the anchors
    /// came from (`ShardedSeedIndex::fingerprint`), or 0 when the
    /// workload was seeded in memory. Nonzero values fold into the
    /// checkpoint fingerprint so a resume can never silently cross
    /// index versions; 0 leaves historical fingerprints intact.
    pub index_fingerprint: u64,
}

impl FastZConfig {
    /// Full FastZ on the given device.
    pub fn new(scoring: Scoring, device: DeviceSpec) -> FastZConfig {
        FastZConfig {
            scoring,
            flags: OptFlags::fastz(),
            device,
            max_extension: 40_000,
            inspector_batch: 2048,
            sim_threads: 0,
            host_dispatch: HostDispatch::default(),
            strip_width: WARP_SIZE,
            backend: WavefrontBackend::default(),
            sanitize: false,
            extend_backend: ExtendBackend::default(),
            bitvec: BitvecConfig::default(),
            index_fingerprint: 0,
        }
    }
}

/// Aggregate pipeline statistics.
#[derive(Clone, Debug, Default)]
pub struct FastZStats {
    /// Seed anchors processed.
    pub seeds: usize,
    /// One-sided extension problems (2 per seed).
    pub problems: usize,
    /// Problems finished by eager traceback in the inspector.
    pub eager_resolved: usize,
    /// Problems that required the executor.
    pub executor_problems: usize,
    /// Inspector work counters.
    pub inspector: KernelCounters,
    /// Executor work counters.
    pub executor: KernelCounters,
    /// Bitvector work-reduction counters (all zero under y-drop).
    pub bitvec: BitvecStats,
}

/// Result of a FastZ run.
#[derive(Clone, Debug)]
pub struct FastZReport {
    /// Alignments meeting the score threshold, deduplicated.
    pub alignments: Vec<Alignment>,
    /// Table 2 classification (per seed, by optimal extent).
    pub bin_counts: BinCounts,
    /// Figure 8 phase attribution of the modeled time.
    pub timeline: PhaseTimeline,
    /// Modeled end-to-end GPU time in seconds.
    pub modeled_time_s: f64,
    /// Aggregate statistics.
    pub stats: FastZStats,
    /// Wall-clock time of the host-side functional simulation.
    pub host_wall: Duration,
    /// Inspector kernel specifications (for re-timing on other devices).
    pub inspector_kernels: Vec<KernelSpec>,
    /// Executor kernel specifications, one batch per length bin.
    pub executor_kernels: Vec<KernelSpec>,
    /// Bin slot of each executor kernel, parallel to `executor_kernels`
    /// (slot 0 = eager-sized problems run with the flag off, then the
    /// four §3.3 bins, then overflow). The cross-request bin packer
    /// (`fastz-serve`) keys merged launches on this.
    pub executor_bin_slots: Vec<usize>,
    /// Modeled host-side "other" time (device-independent).
    pub other_s: f64,
    /// Worst-case per-problem score-matrix allocation in bytes when the
    /// cyclic register buffers are disabled (`None` when they are on):
    /// device memory divided by this caps inspector concurrency.
    pub inspector_alloc_bytes: Option<u64>,
    /// Worst-case per-problem executor allocation in bytes when executor
    /// trimming is disabled (`None` when trimming is on): without the
    /// inspector's length information the executor must allocate
    /// traceback (and, without cyclic buffers, scores) for the whole
    /// search space, capping its concurrency (paper §3.1.3: precise
    /// allocation "enables FastZ to pack many more seed extensions into
    /// one kernel").
    pub executor_alloc_bytes: Option<u64>,
    /// Fault accounting and recovery actions ([`ResilienceReport::default`]
    /// — all zeros — on a fault-free run without checkpointing).
    pub resilience: ResilienceReport,
    /// Merged sanitizer findings (`None` unless [`FastZConfig::sanitize`]
    /// was set). Sorted into canonical order, so the report is
    /// bit-identical across `sim_threads` and dispatch modes.
    pub sanitize: Option<fastz_gpu_sim::SanitizeReport>,
}

impl FastZReport {
    /// Re-prices this run's measured work on another device and stream
    /// count without re-running the functional simulation (the work
    /// counters are device-independent).
    pub fn retime(&self, device: &DeviceSpec, streams: usize) -> PhaseTimeline {
        let usable = device.mem_gib as u64 * (1 << 30) * 8 / 10;
        let insp_cap = self
            .inspector_alloc_bytes
            .map(|b| (usable / b.max(1)) as usize);
        let exec_cap = self
            .executor_alloc_bytes
            .map(|b| (usable / b.max(1)) as usize);
        let insp = time_stream_pipeline_capped(device, &self.inspector_kernels, streams, insp_cap);
        let exec = time_stream_pipeline_capped(device, &self.executor_kernels, streams, exec_cap);
        let mut timeline = PhaseTimeline::new();
        timeline.add("inspector", insp.time_s);
        timeline.add("executor", exec.time_s);
        timeline.add("other", self.other_s);
        timeline
    }
}

/// Outcome of one extension problem (inspector or executor side).
/// `pub(crate)` so the checkpoint layer (`resilient`) can persist it.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct SideResult {
    pub(crate) score: i32,
    pub(crate) best_i: usize,
    pub(crate) best_j: usize,
    pub(crate) explored_rows: usize,
    pub(crate) explored_cols: usize,
    pub(crate) eager_ops: Option<Vec<EditOp>>,
    pub(crate) task: WarpTask,
    pub(crate) counters: fastz_gpu_sim::WarpCounters,
    pub(crate) bitvec: BitvecStats,
}

impl SideResult {
    /// Optimal extent (mirrors [`WarpExtension::extent`]) — the length
    /// that drives Table 2 binning and the seed-extent histogram.
    pub(crate) fn extent(&self) -> usize {
        self.best_i.max(self.best_j)
    }
}

/// One side's final edit script (for splicing).
#[derive(Clone, Debug, Default)]
struct SideOps {
    score: i32,
    best_i: usize,
    best_j: usize,
    ops: Vec<EditOp>,
}

fn sim_threads(cfg: &FastZConfig) -> usize {
    if cfg.sim_threads > 0 {
        cfg.sim_threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
}

/// Builds the (target, query) suffix slices of one problem side; the left
/// side reverses prefixes into the provided buffers.
fn side_slices<'a>(
    target: &'a Sequence,
    query: &'a Sequence,
    anchor: Anchor,
    seed_span: usize,
    left: bool,
    max_extension: usize,
    rev: &'a mut (Vec<u8>, Vec<u8>),
) -> (&'a [u8], &'a [u8]) {
    let (rev_t, rev_q) = rev;
    let tc = target.codes();
    let qc = query.codes();
    let t0 = anchor.target_pos as usize;
    let q0 = anchor.query_pos as usize;
    if left {
        let ts = t0.saturating_sub(max_extension);
        let qs = q0.saturating_sub(max_extension);
        rev_t.clear();
        rev_q.clear();
        rev_t.extend(tc[ts..t0].iter().rev());
        rev_q.extend(qc[qs..q0].iter().rev());
        (rev_t.as_slice(), rev_q.as_slice())
    } else {
        let te = tc.len().min(t0 + seed_span + max_extension);
        let qe = qc.len().min(q0 + seed_span + max_extension);
        (&tc[t0 + seed_span..te], &qc[q0 + seed_span..qe])
    }
}

// Phase execution lives in `crate::pool`: a persistent work-stealing
// worker set with per-worker buffer arenas replaces the old
// spawn-per-phase static chunking (`run_phase`). Problems are claimed
// through an atomic index, results come back in problem order, and a
// worker panic is re-raised with its original payload.

/// Runs the FastZ pipeline over `anchors` (fault-free, no checkpoint).
pub fn run_fastz(
    target: &Sequence,
    query: &Sequence,
    anchors: &[Anchor],
    seed_span: usize,
    cfg: &FastZConfig,
) -> FastZReport {
    run_fastz_resilient(
        target,
        query,
        anchors,
        seed_span,
        cfg,
        &ResilienceConfig::disabled(),
    )
}

/// Per-problem fault handling outcome (bit-flip ladder).
#[derive(Clone, Copy, Debug, Default)]
struct ProblemLog {
    flips: u64,
    retries: u64,
    fell_back: bool,
    skipped: bool,
    backoff_s: f64,
    wasted_s: f64,
}

/// Packs the optimization flags for the config word. Injective on its
/// own (three bools below `streams << 3`); [`config_identity`] folds
/// the whole value instead of OR-ing further bits on top, which is
/// what used to let `streams` collide with the strip-width bit range.
// fastz-lint: fingerprint(OptFlags)
fn flags_bits(flags: &OptFlags) -> u64 {
    let OptFlags {
        cyclic_buffers,
        eager_traceback,
        executor_trimming,
        streams,
    } = *flags;
    (cyclic_buffers as u64)
        | (eager_traceback as u64) << 1
        | (executor_trimming as u64) << 2
        | (streams as u64) << 3
}

/// FNV-1a folds `v` into `h` — the combiner for the config word.
fn fold64(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The semantic-config word folded into the checkpoint fingerprint.
///
/// Every `FastZConfig` field is either folded here, covered by another
/// fingerprint input, or waived with a written reason — the exhaustive
/// destructure makes adding a field without deciding its identity fate
/// a compile error. Components are FNV-folded rather than bit-packed:
/// the old packed word let `streams << 3` reach the bit range
/// `strip_width << 8` occupied, and silently omitted `max_extension`
/// and the bitvector geometry from the identity entirely.
// fastz-lint: fingerprint(FastZConfig)
fn config_identity(cfg: &FastZConfig, strip_width: usize) -> u64 {
    let FastZConfig {
        scoring: _, // not fingerprinted: workload_fingerprint folds the scoring scheme itself
        flags,
        device: _, // not fingerprinted: the device model shapes modeled timing, never results
        max_extension,
        inspector_batch: _, // not fingerprinted: launch batching is wall-clock only
        sim_threads: _,     // not fingerprinted: host parallelism is wall-clock only
        host_dispatch: _,   // not fingerprinted: dispatch policy is wall-clock only
        strip_width: _, // not fingerprinted as declared: the clamped effective width is folded instead
        backend: _,     // not fingerprinted: interpreter and SIMD are bit-identical by contract
        sanitize: _,    // not fingerprinted: the sanitizer never touches results
        extend_backend,
        bitvec,
        index_fingerprint: _, // not fingerprinted: combined into the workload word separately (0 is the identity)
    } = cfg;
    // A y-drop checkpoint holds affine scores and must not restore into
    // a bitvector run (and vice versa).
    let backend_bit = match extend_backend {
        ExtendBackend::YDrop => 0u64,
        ExtendBackend::Bitvector => 1u64,
    };
    let mut w = fold64(0xcbf2_9ce4_8422_2325, flags_bits(flags));
    w = fold64(w, strip_width as u64);
    w = fold64(w, backend_bit);
    w = fold64(w, *max_extension as u64);
    w = fold64(w, bitvec_identity(bitvec));
    w
}

/// Identity of the bitvector geometry. A semantic axis when the
/// bitvector backend is active; folded unconditionally so the config
/// word is a total function of the config, not itself config-dependent.
// fastz-lint: fingerprint(BitvecConfig)
fn bitvec_identity(bv: &BitvecConfig) -> u64 {
    let BitvecConfig {
        window,
        overlap,
        k,
        mutation,
    } = *bv;
    let mut w = fold64(0xcbf2_9ce4_8422_2325, window as u64);
    w = fold64(w, overlap as u64);
    w = fold64(w, k as u64);
    w = fold64(w, mutation as u64);
    w
}

/// One extension problem under the resilience ladder.
///
/// Attempts `0..max_problem_retries` run the configured warp engine;
/// a bit flip detected on each of those degrades the problem to the
/// scalar y-drop path — the same engine at strip width 1 (one lane,
/// one cell per step), whose results are identical by the strip-width
/// invariance property — for `max_fallback_retries` more attempts.
/// Exhausting the whole budget skips the problem with record. Each
/// discarded attempt charges its task's serial time plus an exponential
/// backoff into the modeled overhead; the clean attempt's result and
/// counters are the ones kept.
#[allow(clippy::too_many_arguments)]
fn extend_resilient(
    t: &[u8],
    q: &[u8],
    scoring: &Scoring,
    warp_cfg: &WarpConfig,
    backend: ExtendBackend,
    bvcfg: &BitvecConfig,
    shared: &mut SharedMem,
    tbm: &mut Vec<u8>,
    rcfg: &ResilienceConfig,
    unit: u64,
    clock_hz: f64,
) -> (SideResult, ProblemLog) {
    // One clean attempt of the configured algorithm. The bitvector
    // engine has no strip-width ladder — its deterministic re-run *is*
    // the degraded rung — so `scalar` only reshapes the y-drop path.
    fn attempt_once(
        t: &[u8],
        q: &[u8],
        scoring: &Scoring,
        warp_cfg: &WarpConfig,
        backend: ExtendBackend,
        bvcfg: &BitvecConfig,
        shared: &mut SharedMem,
        tbm: &mut Vec<u8>,
        scalar: bool,
    ) -> SideResult {
        match backend {
            ExtendBackend::YDrop => {
                let engine_cfg = if scalar {
                    warp_cfg.with_strip_width(1)
                } else {
                    *warp_cfg
                };
                side_result(warp_extend_in(t, q, scoring, &engine_cfg, shared, tbm))
            }
            ExtendBackend::Bitvector => side_result_bitvec(bitvec_extend_in(t, q, bvcfg, shared)),
        }
    }
    let mut log = ProblemLog::default();
    if rcfg.plan.is_none() {
        let r = attempt_once(t, q, scoring, warp_cfg, backend, bvcfg, shared, tbm, false);
        return (r, log);
    }
    let site = FaultSite::new(rcfg.device_ord, scope::PROBLEM, unit);
    let budget = rcfg.attempt_budget();
    let mut attempt = 0u32;
    loop {
        let scalar = attempt >= rcfg.max_problem_retries;
        shared.clear();
        let r = attempt_once(t, q, scoring, warp_cfg, backend, bvcfg, shared, tbm, scalar);
        if !rcfg.plan.fires(FaultKind::BitFlip, site, attempt) {
            log.fell_back = scalar;
            return (r, log);
        }
        // ECC flagged a flipped score cell: discard the attempt, charge
        // its serial time plus backoff, and climb the ladder.
        log.flips += 1;
        log.wasted_s += r.task.cycles / clock_hz;
        log.backoff_s += rcfg.watchdog.backoff_s(attempt);
        attempt += 1;
        if attempt >= budget {
            // Skip with record: the run keeps going without this seed
            // (its index lands in `ResilienceReport::skipped_seeds`);
            // the last attempt's result still feeds binning and timing.
            log.skipped = true;
            return (r, log);
        }
        log.retries += 1;
    }
}

/// [`run_fastz`] under a [`ResilienceConfig`]: the same pipeline with
/// fault injection probes, the bit-flip retry/degradation ladder,
/// watchdog-priced kernel recovery, and batch-level checkpoint/resume.
pub fn run_fastz_resilient(
    target: &Sequence,
    query: &Sequence,
    anchors: &[Anchor],
    seed_span: usize,
    cfg: &FastZConfig,
    rcfg: &ResilienceConfig,
) -> FastZReport {
    run_fastz_observed(target, query, anchors, seed_span, cfg, rcfg, &mut NoObs)
}

/// [`run_fastz_resilient`] with a [`MetricsSink`] threaded through the
/// pipeline: semantic counters, per-problem histograms, timing gauges,
/// and a phase-scoped span timeline land in `sink`.
///
/// With [`NoObs`] the sink calls monomorphize to nothing and the span
/// layout work is skipped entirely (`S::ENABLED` gate), so the
/// unobserved pipeline is byte-for-byte the pre-observability machine
/// code. With a [`fastz_obs::Recorder`], everything exported derives
/// from the modeled clock and deterministic work counters — never from
/// wall time — so a fixed-seed run records a byte-identical report on
/// every invocation.
pub fn run_fastz_observed<S: MetricsSink>(
    target: &Sequence,
    query: &Sequence,
    anchors: &[Anchor],
    seed_span: usize,
    cfg: &FastZConfig,
    rcfg: &ResilienceConfig,
    sink: &mut S,
) -> FastZReport {
    // One persistent worker set for the whole run: both phases dispatch
    // onto the same pool, and each worker's arena survives from the
    // inspector into the executor.
    std::thread::scope(|scope| {
        let pool = HostPool::new(
            scope,
            sim_threads(cfg),
            &cfg.device,
            cfg.host_dispatch,
            cfg.sanitize,
        );
        run_fastz_in_pool(target, query, anchors, seed_span, cfg, rcfg, sink, &pool)
    })
}

/// The pipeline body, parameterized over an already-running [`HostPool`].
///
/// This is the entry point the alignment service (`fastz-serve`) uses to
/// run many requests on one persistent worker set: arenas survive across
/// requests exactly as they survive across phases, and because every
/// result derives from position-keyed work counters, a request's report —
/// alignments, bin counts, and the modeled GPU time's exact bits — is
/// identical whether its problems ran on a private pool or interleaved
/// with other requests' phases on a shared one.
#[allow(clippy::too_many_arguments)]
pub fn run_fastz_in_pool<S: MetricsSink>(
    target: &Sequence,
    query: &Sequence,
    anchors: &[Anchor],
    seed_span: usize,
    cfg: &FastZConfig,
    rcfg: &ResilienceConfig,
    sink: &mut S,
    pool: &HostPool<'_>,
) -> FastZReport {
    let wall_start = Instant::now();
    let flags = cfg.flags;
    let strip_width = cfg.strip_width.clamp(1, WARP_SIZE);
    let n_problems = anchors.len() * 2;
    let clock_hz = cfg.device.clock_ghz * 1e9;

    // ---- Checkpoint: load and validate against the workload --------------
    // The semantic config word ([`config_identity`]) rides in the
    // workload fingerprint: a checkpoint written at another strip
    // width, extension algorithm, extension cap, or bitvector geometry
    // holds another engine's work and must not be restored here.
    // The seed-index identity folds in last: anchors produced by a
    // persisted index version A must not resume a checkpoint written
    // under version B (combine with 0 is the identity, so in-memory
    // workloads keep their historical fingerprints).
    let fingerprint = combine_fingerprint(
        workload_fingerprint(
            target,
            query,
            anchors,
            seed_span,
            &cfg.scoring,
            config_identity(cfg, strip_width),
        ),
        cfg.index_fingerprint,
    );
    let mut ckpt = Checkpoint::new(fingerprint);
    let mut res = ResilienceReport::default();
    if let Some(path) = &rcfg.checkpoint {
        match Checkpoint::load(path) {
            Ok(Some(prev)) if prev.fingerprint == fingerprint => {
                res.resumed = prev.inspector_done;
                ckpt = prev;
            }
            Ok(Some(prev)) => {
                // A foreign or stale checkpoint (different inputs/flags)
                // is not trusted; record why and start from scratch.
                res.checkpoints_rejected.push(format!(
                    "{}: fingerprint {:016x} does not match workload {:016x}",
                    path.display(),
                    prev.fingerprint,
                    fingerprint
                ));
            }
            Ok(None) => {}
            Err(e) => {
                // Torn/corrupt file (or an IO failure): reported, not
                // silently ignored — the run proceeds from scratch and
                // the next save atomically replaces the bad file.
                res.checkpoints_rejected.push(e);
            }
        }
    }
    let mut skipped: BTreeSet<usize> = BTreeSet::new();
    let absorb = |res: &mut ResilienceReport,
                  skipped: &mut BTreeSet<usize>,
                  idx: usize,
                  log: &ProblemLog| {
        res.injected.bit_flips += log.flips;
        res.detected.bit_flips += log.flips;
        res.retries += log.retries;
        res.backoff_s += log.backoff_s;
        res.overhead_s += log.wasted_s + log.backoff_s;
        if log.fell_back {
            res.fallbacks += 1;
        }
        if log.skipped {
            skipped.insert(idx / 2);
        }
    };

    // ---- Inspector phase -------------------------------------------------
    let insp_cfg = WarpConfig::inspector(&flags)
        .with_strip_width(strip_width)
        .with_backend(cfg.backend);
    let restored_inspector =
        ckpt.inspector_done && (0..n_problems).all(|i| ckpt.inspector.contains_key(&i));
    let inspector_results: Vec<SideResult> = if restored_inspector {
        res.restored_problems += n_problems as u64;
        (0..n_problems)
            .map(|i| ckpt.inspector[&i].clone())
            .collect()
    } else {
        let outcomes = pool.run(n_problems, |idx, arena| {
            arena.shared.sanitize_context("inspector", idx as u64);
            let anchor = anchors[idx / 2];
            let left = idx % 2 == 0;
            let (t, q) = side_slices(
                target,
                query,
                anchor,
                seed_span,
                left,
                cfg.max_extension,
                &mut arena.rev,
            );
            extend_resilient(
                t,
                q,
                &cfg.scoring,
                &insp_cfg,
                cfg.extend_backend,
                &cfg.bitvec,
                &mut arena.shared,
                &mut arena.scratch,
                rcfg,
                idx as u64,
                clock_hz,
            )
        });
        let mut results = Vec::with_capacity(n_problems);
        for (idx, (r, log)) in outcomes.into_iter().enumerate() {
            absorb(&mut res, &mut skipped, idx, &log);
            results.push(r);
        }
        results
    };
    if let Some(path) = &rcfg.checkpoint {
        if !restored_inspector {
            for (i, r) in inspector_results.iter().enumerate() {
                ckpt.inspector.insert(i, r.clone());
            }
            ckpt.inspector_done = true;
            // Best-effort persistence: a failed write degrades resume,
            // never the run itself.
            if ckpt.save(path).is_ok() {
                res.checkpoints_written += 1;
            }
        }
    }

    let mut stats = FastZStats {
        seeds: anchors.len(),
        problems: n_problems,
        ..FastZStats::default()
    };
    for r in &inspector_results {
        stats.inspector.add_task(&r.counters);
        stats.bitvec.merge(&r.bitvec);
        sink.observe(
            names::TASK_CYCLES_INSPECTOR_HIST,
            &names::TASK_CYCLES_BUCKETS,
            r.task.cycles,
        );
    }

    // ---- Table 2 classification (per seed, by optimal extent) -----------
    let mut bin_counts = BinCounts::default();
    for pair in inspector_results.chunks(2) {
        let extent = pair.iter().map(|r| r.extent()).max().unwrap_or(0);
        bin_counts.record(classify(extent));
        sink.observe(
            names::SEED_EXTENT_HIST,
            &names::SEED_EXTENT_BUCKETS,
            extent as f64,
        );
    }

    // ---- Partition: eager-resolved vs executor problems ------------------
    // A side is resolved in the inspector iff eager traceback produced its
    // edit script (requires the flag and a ≤16×16 optimum). The bitvector
    // engine tracebacks every problem in place, so under it a side is
    // resolved whenever a script exists — always, in practice — and the
    // executor phase runs empty regardless of the eager flag.
    let mut executor_idx: Vec<usize> = Vec::new();
    for (idx, r) in inspector_results.iter().enumerate() {
        let resolved = match cfg.extend_backend {
            ExtendBackend::YDrop => flags.eager_traceback && r.eager_ops.is_some(),
            ExtendBackend::Bitvector => r.eager_ops.is_some(),
        };
        if resolved {
            stats.eager_resolved += 1;
        } else {
            executor_idx.push(idx);
        }
    }
    stats.executor_problems = executor_idx.len();

    // Group executor problems by length bin (§3.3), preserving order
    // within a bin.
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); BIN_BOUNDS.len() + 2];
    for &idx in &executor_idx {
        let r = &inspector_results[idx];
        let class = classify(r.extent());
        let slot = match class {
            BinClass::Eager => 0, // eager-sized but flag off → smallest bin
            BinClass::Bin(b) => b + 1,
            BinClass::Overflow => BIN_BOUNDS.len() + 1,
        };
        bins[slot].push(idx);
    }

    // ---- Executor phase ---------------------------------------------------
    let mut executor_results: Vec<Option<SideResult>> = vec![None; n_problems];
    let mut executor_kernels: Vec<KernelSpec> = Vec::new();
    // Bin slot of each executor kernel, parallel to `executor_kernels` —
    // lets the emit block below attribute per-bin span durations.
    let mut executor_kernel_slots: Vec<usize> = Vec::new();
    for (slot, bin) in bins.iter().enumerate() {
        if bin.is_empty() {
            continue;
        }
        // Checkpoint granularity is the executor bin: a bin whose every
        // problem was persisted restores wholesale; anything less re-runs.
        let restored_bin =
            ckpt.bins_done.contains(&slot) && bin.iter().all(|idx| ckpt.executor.contains_key(idx));
        let mut tasks = Vec::with_capacity(bin.len());
        if restored_bin {
            res.restored_problems += bin.len() as u64;
            for &idx in bin {
                let r = ckpt.executor[&idx].clone();
                stats.executor.add_task(&r.counters);
                stats.bitvec.merge(&r.bitvec);
                sink.observe(
                    names::TASK_CYCLES_EXECUTOR_HIST,
                    &names::TASK_CYCLES_BUCKETS,
                    r.task.cycles,
                );
                tasks.push(r.task);
                executor_results[idx] = Some(r);
            }
        } else {
            let results = pool.run(bin.len(), |k, arena| {
                let idx = bin[k];
                arena.shared.sanitize_context("executor", idx as u64);
                let anchor = anchors[idx / 2];
                let left = idx % 2 == 0;
                let insp = &inspector_results[idx];
                let (t, q) = side_slices(
                    target,
                    query,
                    anchor,
                    seed_span,
                    left,
                    cfg.max_extension,
                    &mut arena.rev,
                );
                let mut exec_cfg = WarpConfig::executor(&flags, insp.best_i, insp.best_j)
                    .with_strip_width(strip_width)
                    .with_backend(cfg.backend);
                if !flags.executor_trimming {
                    // Untrimmed executor recomputes the whole search space the
                    // inspector explored, with traceback everywhere (Fig 9
                    // base configuration).
                    exec_cfg.max_rows = insp.explored_rows;
                    exec_cfg.max_cols = insp.explored_cols;
                }
                // The bin's arena traceback buffer, leased by slot: the
                // engine zero-resizes it to the trimmed cell count, so the
                // first problem of a class allocates and the rest reuse.
                let rows = q.len().min(exec_cfg.max_rows);
                let cols = t.len().min(exec_cfg.max_cols);
                let tbm = arena.tb.lease(slot, rows.saturating_mul(cols));
                // Executor problem sites live in the upper unit half-space
                // so their fault schedule is independent of the inspector's.
                extend_resilient(
                    t,
                    q,
                    &cfg.scoring,
                    &exec_cfg,
                    cfg.extend_backend,
                    &cfg.bitvec,
                    &mut arena.shared,
                    tbm,
                    rcfg,
                    (1u64 << 32) | idx as u64,
                    clock_hz,
                )
            });
            for (k, (r, log)) in results.into_iter().enumerate() {
                absorb(&mut res, &mut skipped, bin[k], &log);
                stats.executor.add_task(&r.counters);
                stats.bitvec.merge(&r.bitvec);
                sink.observe(
                    names::TASK_CYCLES_EXECUTOR_HIST,
                    &names::TASK_CYCLES_BUCKETS,
                    r.task.cycles,
                );
                tasks.push(r.task);
                executor_results[bin[k]] = Some(r);
            }
            if let Some(path) = &rcfg.checkpoint {
                for &idx in bin {
                    if let Some(r) = &executor_results[idx] {
                        ckpt.executor.insert(idx, r.clone());
                    }
                }
                ckpt.bins_done.insert(slot);
                if ckpt.save(path).is_ok() {
                    res.checkpoints_written += 1;
                }
            }
        }
        // One kernel per bin (split into batches like the inspector).
        for (b, chunk) in tasks.chunks(cfg.inspector_batch).enumerate() {
            executor_kernels.push(KernelSpec::new(
                format!("executor-bin{slot}-{b}"),
                chunk.to_vec(),
                BlockResources::fastz_executor(),
            ));
            executor_kernel_slots.push(slot);
        }
    }

    // ---- Splice halves into alignments -----------------------------------
    let mut alignments: Vec<Alignment> = Vec::new();
    for (a_idx, anchor) in anchors.iter().enumerate() {
        // A seed whose side exhausted the whole retry/fallback budget is
        // skipped with record rather than spliced from a suspect result.
        if skipped.contains(&a_idx) {
            continue;
        }
        // A side's final ops come from eager traceback (inspector) when it
        // resolved there, otherwise from the executor's full traceback
        // (both are stored in `SideResult::eager_ops` by `side_result`).
        let side = |idx: usize| -> SideOps {
            let r = match &executor_results[idx] {
                Some(exec) => exec,
                None => &inspector_results[idx],
            };
            SideOps {
                score: r.score,
                best_i: r.best_i,
                best_j: r.best_j,
                ops: r
                    .eager_ops
                    .clone()
                    .expect("unresolved side has no edit script"),
            }
        };
        let left = side(a_idx * 2);
        let right = side(a_idx * 2 + 1);

        let tc = target.codes();
        let qc = query.codes();
        let t0 = anchor.target_pos as usize;
        let q0 = anchor.query_pos as usize;
        // The seed must be scored in the same regime as the sides it
        // joins: substitution-matrix scores under y-drop, the unit
        // identity (match +2, mismatch −1: `(i+j) − 3·ed` over one
        // aligned pair) under the bitvector engine.
        let mut seed_score = 0i32;
        for k in 0..seed_span {
            seed_score += match cfg.extend_backend {
                ExtendBackend::YDrop => cfg.scoring.subst.score(tc[t0 + k], qc[q0 + k]),
                ExtendBackend::Bitvector => {
                    if tc[t0 + k] == qc[q0 + k] {
                        2
                    } else {
                        -1
                    }
                }
            };
        }

        let mut ops: Vec<EditOp> = Vec::new();
        for &op in left.ops.iter().rev() {
            push_op(&mut ops, op);
        }
        push_op(&mut ops, EditOp::Diag(seed_span as u32));
        for &op in &right.ops {
            push_op(&mut ops, op);
        }

        let alignment = Alignment {
            target_start: t0 - left.best_j,
            target_end: t0 + seed_span + right.best_j,
            query_start: q0 - left.best_i,
            query_end: q0 + seed_span + right.best_i,
            score: left.score + seed_score + right.score,
            ops,
        };
        if alignment.score >= cfg.scoring.gapped_threshold {
            alignments.push(alignment);
        }
    }
    let alignments = fastz_align::dedupe_alignments(alignments);

    // ---- Timing assembly ---------------------------------------------------
    let inspector_kernels: Vec<KernelSpec> = inspector_results
        .chunks(cfg.inspector_batch)
        .enumerate()
        .map(|(b, chunk)| {
            KernelSpec::new(
                format!("inspector-{b}"),
                chunk.iter().map(|r| r.task).collect(),
                BlockResources::fastz_inspector(),
            )
        })
        .collect();

    // Without cyclic register buffers, the inspector cannot elide its
    // score matrices: each resident problem holds a worst-case banded
    // allocation (reachable rows × max extension × 12 B), and device
    // memory caps how many problems run concurrently (paper §3 — the
    // footprint reduction "enables more parallelism").
    let max_match = cfg.scoring.subst.max_score().max(1);
    let banded_rows = 32
        + ((cfg.scoring.ydrop + 32 * max_match).max(0) / cfg.scoring.gaps.extend.max(1)) as usize;
    let inspector_alloc_bytes =
        (!flags.cyclic_buffers).then(|| (banded_rows * cfg.max_extension * 12) as u64);
    let executor_alloc_bytes = (!flags.executor_trimming).then(|| {
        let per_cell = 1 + if flags.cyclic_buffers { 0 } else { 12 };
        (banded_rows * cfg.max_extension * per_cell) as u64
    });
    let usable = cfg.device.mem_gib as u64 * (1 << 30) * 8 / 10;
    let insp_cap = inspector_alloc_bytes.map(|b| (usable / b.max(1)) as usize);
    let exec_cap = executor_alloc_bytes.map(|b| (usable / b.max(1)) as usize);
    let insp_t = time_stream_pipeline_resilient(
        &cfg.device,
        &inspector_kernels,
        flags.streams,
        insp_cap,
        &rcfg.plan,
        rcfg.device_ord,
        scope::INSPECTOR_KERNEL,
        &rcfg.watchdog,
    );
    let exec_t = time_stream_pipeline_resilient(
        &cfg.device,
        &executor_kernels,
        flags.streams,
        exec_cap,
        &rcfg.plan,
        rcfg.device_ord,
        scope::EXECUTOR_KERNEL,
        &rcfg.watchdog,
    );
    for rt in [&insp_t, &exec_t] {
        // Kernel-level faults: hangs are detected (watchdog + relaunch);
        // stalls and shared-memory pressure are tolerated in place.
        res.injected.merge(&rt.faults);
        res.detected.hangs += rt.faults.hangs;
        res.tolerated.stalls += rt.faults.stalls;
        res.tolerated.shmem_pressure += rt.faults.shmem_pressure;
        res.retries += rt.retries;
        res.backoff_s += rt.backoff_s;
        res.overhead_s += rt.overhead_s;
    }
    res.skipped_seeds = skipped.into_iter().collect();
    let other_s = host::FIXED_S
        + (target.len() + query.len()) as f64 / host::PCIE_BW
        + anchors.len() as f64 * host::PER_SEED_S;

    let mut timeline = PhaseTimeline::new();
    timeline.add("inspector", insp_t.base.time_s);
    timeline.add("executor", exec_t.base.time_s);
    timeline.add("other", other_s);
    if res.overhead_s > 0.0 {
        // Fault-free runs keep the three-phase Figure 8 timeline exactly;
        // fault recovery shows up as its own phase.
        timeline.add("resilience", res.overhead_s);
    }

    // Both phases have completed (`pool.run` blocks until workers drain
    // their arenas), so the merged sanitizer report is final here.
    let sanitize_report = pool.sanitize_report();

    // ---- Observability emit -----------------------------------------------
    // Everything below derives from deterministic work counters and the
    // modeled clock — never wall time — so a fixed-seed run exports
    // byte-identical metrics and spans on every invocation. The whole
    // block (including the per-bin span re-timing) is gated on
    // `S::ENABLED` so `NoObs` runs pay nothing.
    if S::ENABLED {
        sink.counter_add(names::SEEDS_TOTAL, stats.seeds as u64);
        sink.counter_add(names::PROBLEMS_TOTAL, stats.problems as u64);
        sink.counter_add(names::EAGER_RESOLVED_TOTAL, stats.eager_resolved as u64);
        sink.counter_add(
            names::EXECUTOR_PROBLEMS_TOTAL,
            stats.executor_problems as u64,
        );
        sink.counter_add(names::ALIGNMENTS_TOTAL, alignments.len() as u64);
        // Bitvector work-reduction counters, emitted on every observed
        // run — zeros under y-drop — so the exported series set never
        // depends on the configured backend.
        sink.counter_add(names::BITVEC_WINDOWS_TOTAL, stats.bitvec.windows);
        sink.counter_add(names::BITVEC_SENE_SKIPS_TOTAL, stats.bitvec.sene_skips);
        sink.counter_add(
            names::BITVEC_DENT_DISCARDS_TOTAL,
            stats.bitvec.dent_discards,
        );
        bin_counts.record_into(sink);
        stats.inspector.record_into(sink, "inspector");
        stats.executor.record_into(sink, "executor");
        res.record_into(sink);

        let eager_ratio = if stats.problems == 0 {
            0.0
        } else {
            stats.eager_resolved as f64 / stats.problems as f64
        };
        sink.gauge_set(names::EAGER_HIT_RATIO, eager_ratio);
        let mut work = stats.inspector.total;
        work.merge(&stats.executor.total);
        let moved = work.shared_bytes + work.global_bytes();
        let elision = if moved == 0 {
            0.0
        } else {
            work.shared_bytes as f64 / moved as f64
        };
        sink.gauge_set(names::GLOBAL_TRAFFIC_ELISION_RATIO, elision);
        roofline::analyze(
            &cfg.device,
            stats.inspector.total.alu_ops,
            stats.inspector.total.global_bytes(),
        )
        .record_into(sink, "inspector");
        roofline::analyze(
            &cfg.device,
            stats.executor.total.alu_ops,
            stats.executor.total.global_bytes(),
        )
        .record_into(sink, "executor");
        insp_t.base.record_into(sink, "inspector");
        exec_t.base.record_into(sink, "executor");
        timeline.record_into(sink);
        sink.gauge_set(names::MODELED_TIME_SECONDS, timeline.total());

        // Host execution pool telemetry. Tasks, phases, and the arena
        // counters are deterministic at one worker (the golden workload
        // pins `sim_threads = 1`); steals and occupancy describe the
        // actual schedule.
        let ps = pool.stats();
        sink.gauge_set(names::POOL_WORKERS, ps.workers as f64);
        sink.counter_add(names::POOL_PHASES_TOTAL, ps.phases);
        sink.counter_add(names::POOL_TASKS_TOTAL, ps.tasks);
        sink.counter_add(names::POOL_STEALS_TOTAL, ps.steals);
        sink.gauge_set(names::POOL_OCCUPANCY_RATIO, ps.occupancy());
        sink.counter_add(names::ARENA_TB_HITS_TOTAL, ps.tb_hits);
        sink.counter_add(names::ARENA_TB_MISSES_TOTAL, ps.tb_misses);
        sink.gauge_set(
            names::SHARED_CAPACITY_BYTES,
            (cfg.device.shared_kib_per_sm * 1024) as f64,
        );

        // Sanitizer counters, emitted on every observed run — zeros
        // when the sanitizer is off — so the exported series set never
        // depends on configuration (same discipline as FaultCounters).
        let srep = sanitize_report.clone().unwrap_or_default();
        for kind in fastz_gpu_sim::FindingKind::ALL {
            sink.counter_add(&names::sanitize_kind(kind.name()), srep.count(kind));
        }
        sink.counter_add(names::SANITIZE_SHARED_READS_TOTAL, srep.shared_reads);
        sink.counter_add(names::SANITIZE_SHARED_WRITES_TOTAL, srep.shared_writes);
        sink.counter_add(names::SANITIZE_BARRIERS_TOTAL, srep.barriers);
        for ph in ["inspector", "executor"] {
            let b = srep.banks.get(ph).copied().unwrap_or_default();
            sink.counter_add(
                &names::phase(names::BANK_CONFLICTS_TOTAL, ph),
                b.conflict_events,
            );
            sink.counter_add(
                &names::phase(names::BANK_SERIALIZED_TOTAL, ph),
                b.serialized_extra,
            );
            sink.gauge_set(
                &names::phase(names::BANK_MAX_WAYS, ph),
                f64::from(b.max_ways),
            );
            roofline::record_bank_pressure(sink, ph, b.groups, b.serialized_extra);
        }

        // Span timeline: phases laid back-to-back on the logical clock.
        // The per-bin executor spans are an *attribution* view — each
        // slot's kernels re-timed alone — because the multi-stream model
        // pools all bins into one bag of tasks; their sum can therefore
        // differ from the pooled executor phase time (the gauge above
        // keeps the pooled number).
        let mut clock = LogicalClock::new();
        let (s, d) = clock.advance(insp_t.base.time_s * 1e6);
        sink.span(names::SPAN_INSPECTOR, "gpu", s, d);
        let eager_cycles: f64 = inspector_results
            .iter()
            .filter(|r| flags.eager_traceback && r.eager_ops.is_some())
            .map(|r| r.counters.scalar_ops as f64)
            .sum();
        let eager_us = (eager_cycles / clock_hz * 1e6).min(d);
        sink.span(names::SPAN_EAGER_TRACEBACK, "gpu", s, eager_us);
        // Slot 0 holds eager-sized problems run with the flag off — the
        // same kernel class as the smallest bin.
        let slot_bound = |slot: usize| -> Option<usize> {
            match slot {
                0 => Some(BIN_BOUNDS[0]),
                s if s <= BIN_BOUNDS.len() => Some(BIN_BOUNDS[s - 1]),
                _ => None,
            }
        };
        for bound in BIN_BOUNDS.iter().map(|&b| Some(b)).chain([None]) {
            let group: Vec<KernelSpec> = executor_kernels
                .iter()
                .zip(&executor_kernel_slots)
                .filter(|&(_, &slot)| slot_bound(slot) == bound)
                .map(|(k, _)| k.clone())
                .collect();
            if group.is_empty() {
                continue;
            }
            let t = time_stream_pipeline_capped(&cfg.device, &group, flags.streams, exec_cap);
            let (s, d) = clock.advance(t.time_s * 1e6);
            sink.span(names::executor_bin_span(bound), "gpu", s, d);
        }
        let (s, d) = clock.advance((insp_t.base.launch_s + exec_t.base.launch_s) * 1e6);
        sink.span(names::SPAN_STREAM_DISPATCH, "host", s, d);
        let (s, d) = clock.advance(other_s * 1e6);
        sink.span(names::SPAN_OTHER, "host", s, d);
        if res.overhead_s > 0.0 {
            let (s, d) = clock.advance(res.overhead_s * 1e6);
            sink.span(names::SPAN_RESILIENT_RETRY, "resilience", s, d);
        }
    }

    FastZReport {
        alignments,
        bin_counts,
        modeled_time_s: timeline.total(),
        timeline,
        stats,
        host_wall: wall_start.elapsed(),
        inspector_kernels,
        executor_kernels,
        executor_bin_slots: executor_kernel_slots,
        other_s,
        inspector_alloc_bytes,
        executor_alloc_bytes,
        resilience: res,
        sanitize: sanitize_report,
    }
}

fn side_result(ext: WarpExtension) -> SideResult {
    let task = price_task(&ext.counters);
    SideResult {
        score: ext.best_score,
        best_i: ext.best_i,
        best_j: ext.best_j,
        explored_rows: ext.explored_rows,
        explored_cols: ext.explored_cols,
        eager_ops: ext.ops.or(ext.eager_ops),
        task,
        counters: ext.counters,
        bitvec: BitvecStats::default(),
    }
}

/// The bitvector engine always emits a complete edit script, so its
/// sides are resolved in the inspector and never reach the executor.
fn side_result_bitvec(ext: BitvecExtension) -> SideResult {
    let task = price_task(&ext.counters);
    SideResult {
        score: ext.best_score,
        best_i: ext.best_i,
        best_j: ext.best_j,
        explored_rows: ext.explored_rows,
        explored_cols: ext.explored_cols,
        eager_ops: Some(ext.ops),
        task,
        counters: ext.counters,
        bitvec: ext.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastz_align::{sequential_gapped, DriverConfig};
    use fastz_genome::evolve::{generate_pair, PairParams};
    use fastz_seed::{Workload, WorkloadParams};

    fn demo(seed: u64) -> (Sequence, Sequence, Vec<Anchor>, usize) {
        let pair = generate_pair(&PairParams {
            target_len: 12_000,
            query_len: 12_000,
            segments: 24,
            ..PairParams::small_demo("pl", seed)
        });
        let wl = Workload::build(
            &pair.target,
            &pair.query,
            &WorkloadParams {
                max_anchors: 300,
                ..WorkloadParams::default()
            },
        );
        let span = wl.shape.span();
        (pair.target, pair.query, wl.anchors, span)
    }

    fn config() -> FastZConfig {
        FastZConfig::new(Scoring::bench_scaled(), DeviceSpec::rtx3080_ampere())
    }

    #[test]
    fn pipeline_produces_valid_alignments() {
        let (t, q, anchors, span) = demo(101);
        let report = run_fastz(&t, &q, &anchors, span, &config());
        assert!(!report.alignments.is_empty());
        for a in &report.alignments {
            assert!(a.is_consistent(&t, &q), "{a}");
            assert_eq!(a.rescore(&t, &q, &config().scoring), a.score, "{a}");
        }
        assert_eq!(report.bin_counts.total(), anchors.len());
        assert!(report.modeled_time_s > 0.0);
        assert_eq!(report.timeline.entries().len(), 3);
    }

    #[test]
    fn sanitized_pipeline_is_clean_and_bit_identical() {
        // The full pipeline under the sanitizer: zero findings (the
        // engine's shared-memory choreography is correct), and the
        // functional results and modeled time are bit-identical to the
        // unsanitized run — the sanitizer observes, never perturbs.
        let (t, q, anchors, span) = demo(103);
        let base_cfg = config();
        let base = run_fastz(&t, &q, &anchors, span, &base_cfg);
        assert!(base.sanitize.is_none(), "off by default");

        let san_cfg = FastZConfig {
            sanitize: true,
            ..config()
        };
        let san = run_fastz(&t, &q, &anchors, span, &san_cfg);
        let rep = san
            .sanitize
            .as_ref()
            .expect("sanitize: true yields a report");
        assert!(rep.is_clean(), "findings: {:?}", rep.findings);
        assert!(rep.shared_writes > 0, "the eager window was exercised");
        assert!(rep.barriers > 0, "eager walks crossed the modeled barrier");
        assert_eq!(san.alignments, base.alignments);
        assert_eq!(san.bin_counts, base.bin_counts);
        assert_eq!(
            san.modeled_time_s.to_bits(),
            base.modeled_time_s.to_bits(),
            "sanitizer must not perturb modeled time"
        );
    }

    #[test]
    fn sanitized_report_is_invariant_across_sim_threads() {
        let (t, q, anchors, span) = demo(104);
        let run = |threads: usize, dispatch: HostDispatch| {
            let cfg = FastZConfig {
                sanitize: true,
                sim_threads: threads,
                host_dispatch: dispatch,
                ..config()
            };
            run_fastz(&t, &q, &anchors, span, &cfg)
                .sanitize
                .expect("report")
        };
        let reference = run(1, HostDispatch::Stealing);
        assert_eq!(reference, run(4, HostDispatch::Stealing));
        assert_eq!(reference, run(3, HostDispatch::Static));
    }

    #[test]
    fn fastz_matches_or_beats_sequential_lastz() {
        // The paper's §3.4 guarantee: identical or occasionally longer
        // alignments. Every sequential alignment must be covered by a
        // FastZ alignment with at least its score.
        let (t, q, anchors, span) = demo(102);
        let cfg = config();
        let seq_cfg = DriverConfig {
            work_reduction: false,
            ..DriverConfig::gapped(cfg.scoring.clone())
        };
        let seq = sequential_gapped(&t, &q, &anchors, span, &seq_cfg);
        let fz = run_fastz(&t, &q, &anchors, span, &cfg);
        assert!(!seq.alignments.is_empty());
        for a in &seq.alignments {
            let covered = fz.alignments.iter().any(|f| {
                f.target_start <= a.target_start
                    && f.target_end >= a.target_end
                    && f.query_start <= a.query_start
                    && f.query_end >= a.query_end
                    && f.score >= a.score
            });
            assert!(covered, "sequential alignment not covered: {a}");
        }
        // And the vast majority should be *identical*.
        let identical = seq
            .alignments
            .iter()
            .filter(|a| fz.alignments.contains(a))
            .count();
        assert!(
            identical as f64 / seq.alignments.len() as f64 > 0.9,
            "only {identical}/{} identical",
            seq.alignments.len()
        );
    }

    #[test]
    fn eager_traceback_resolves_most_problems() {
        // Tiny-homology-dominated pair (the realistic regime; the bench
        // catalog reproduces the paper's 75-80 % per-seed fraction).
        let pair = generate_pair(&PairParams {
            target_len: 15_000,
            query_len: 15_000,
            segments: 40,
            classes: vec![
                fastz_genome::HomologyClass {
                    name: "tiny",
                    len_range: (21, 34),
                    weight: 90.0,
                    rates: fastz_genome::MutationRates::IDENTITY,
                },
                fastz_genome::HomologyClass {
                    name: "small",
                    len_range: (35, 120),
                    weight: 10.0,
                    rates: fastz_genome::MutationRates::conserved(),
                },
            ],
            ..PairParams::small_demo("eg", 103)
        });
        let wl = Workload::build(&pair.target, &pair.query, &WorkloadParams::default());
        let report = run_fastz(
            &pair.target,
            &pair.query,
            &wl.anchors,
            wl.shape.span(),
            &config(),
        );
        let frac = report.stats.eager_resolved as f64 / report.stats.problems as f64;
        assert!(frac > 0.6, "eager fraction {frac:.2}");
        assert_eq!(
            report.stats.eager_resolved + report.stats.executor_problems,
            report.stats.problems
        );
    }

    #[test]
    fn ablation_configs_all_produce_same_alignments() {
        let (t, q, anchors, span) = demo(104);
        let mut reference: Option<Vec<Alignment>> = None;
        for (label, flags) in OptFlags::figure9_progression() {
            let cfg = FastZConfig { flags, ..config() };
            let report = run_fastz(&t, &q, &anchors, span, &cfg);
            match &reference {
                None => reference = Some(report.alignments),
                Some(r) => assert_eq!(r, &report.alignments, "config {label} changed results"),
            }
        }
    }

    #[test]
    fn ablation_staircase_is_monotone() {
        // Each added optimization must reduce modeled time; a single
        // stream must increase it (Figure 9).
        let (t, q, anchors, span) = demo(105);
        let time_of = |flags: OptFlags| {
            run_fastz(&t, &q, &anchors, span, &FastZConfig { flags, ..config() }).modeled_time_s
        };
        // At unit-test scale some steps are launch-overhead-dominated and
        // may tie; the strict staircase is asserted at benchmark scale by
        // the fig9 harness. Here: never slower, and strictly faster
        // end-to-end.
        let base = time_of(OptFlags::base());
        let cyclic = time_of(OptFlags::with_cyclic());
        let eager = time_of(OptFlags::with_eager());
        let fastz = time_of(OptFlags::fastz());
        let single = time_of(OptFlags::fastz_single_stream());
        assert!(cyclic <= base, "cyclic {cyclic} !<= base {base}");
        assert!(eager <= cyclic, "eager {eager} !<= cyclic {cyclic}");
        assert!(fastz <= eager, "fastz {fastz} !<= eager {eager}");
        assert!(single >= fastz, "single {single} !>= fastz {fastz}");
        assert!(fastz < base, "fastz {fastz} !< base {base}");
    }

    #[test]
    fn empty_anchor_list_is_fine() {
        let (t, q, _, span) = demo(106);
        let report = run_fastz(&t, &q, &[], span, &config());
        assert!(report.alignments.is_empty());
        assert_eq!(report.bin_counts.total(), 0);
    }

    #[test]
    fn shared_capacity_observes_the_device_spec() {
        // Regression for the hardcoded 96-KiB scratchpad: an RTX 3080
        // run must observe the device's full 128 KiB, and a Pascal run
        // its 96 KiB — derived from the spec, not a constant.
        let (t, q, anchors, span) = demo(107);
        let observe = |device: DeviceSpec| {
            let mut rec = fastz_obs::Recorder::new();
            let cfg = FastZConfig { device, ..config() };
            run_fastz_observed(
                &t,
                &q,
                &anchors,
                span,
                &cfg,
                &ResilienceConfig::disabled(),
                &mut rec,
            );
            rec.registry.gauge(names::SHARED_CAPACITY_BYTES).unwrap()
        };
        assert_eq!(observe(DeviceSpec::rtx3080_ampere()), (128 * 1024) as f64);
        assert_eq!(observe(DeviceSpec::titan_x_pascal()), (96 * 1024) as f64);
    }

    #[test]
    fn report_is_invariant_across_sim_threads_and_dispatch() {
        // The pool's determinism contract at unit scale (the proptest
        // widens the corpus sweep): alignments, bin counts, and the
        // modeled time's exact bits never depend on worker count or
        // dispatch mode.
        let (t, q, anchors, span) = demo(108);
        let run_with = |threads: usize, dispatch: crate::pool::HostDispatch| {
            let cfg = FastZConfig {
                sim_threads: threads,
                host_dispatch: dispatch,
                ..config()
            };
            run_fastz(&t, &q, &anchors, span, &cfg)
        };
        let reference = run_with(1, crate::pool::HostDispatch::Stealing);
        for threads in [2, 7, 0] {
            for dispatch in [
                crate::pool::HostDispatch::Stealing,
                crate::pool::HostDispatch::Static,
            ] {
                let r = run_with(threads, dispatch);
                assert_eq!(r.alignments, reference.alignments);
                assert_eq!(r.bin_counts, reference.bin_counts);
                assert_eq!(
                    r.modeled_time_s.to_bits(),
                    reference.modeled_time_s.to_bits(),
                    "modeled time drifted at {threads} threads / {dispatch:?}"
                );
            }
        }
    }

    #[test]
    fn report_is_invariant_across_wavefront_backends() {
        // The SIMD backend's contract mirrors sim_threads/dispatch: a
        // pure wall-clock knob. Everything observable in the report —
        // alignments, bin counts, per-kernel counter totals, and the
        // modeled time's exact bits — matches the interpreter, across
        // thread counts, dispatch modes, and strip widths.
        let (t, q, anchors, span) = demo(108);
        let reference = run_fastz(&t, &q, &anchors, span, &config());
        for (threads, dispatch) in [
            (1, crate::pool::HostDispatch::Stealing),
            (0, crate::pool::HostDispatch::Stealing),
            (0, crate::pool::HostDispatch::Static),
        ] {
            for strip_width in [32usize, 5] {
                let cfg = FastZConfig {
                    backend: WavefrontBackend::Simd,
                    sim_threads: threads,
                    host_dispatch: dispatch,
                    strip_width,
                    ..config()
                };
                let base = FastZConfig {
                    backend: WavefrontBackend::Interpreter,
                    ..cfg.clone()
                };
                let simd = run_fastz(&t, &q, &anchors, span, &cfg);
                let interp = run_fastz(&t, &q, &anchors, span, &base);
                assert_eq!(simd.alignments, interp.alignments);
                assert_eq!(simd.bin_counts, interp.bin_counts);
                let kern = |ks: &[KernelSpec]| -> Vec<(String, Vec<fastz_gpu_sim::WarpTask>)> {
                    ks.iter()
                        .map(|k| (k.name.clone(), k.tasks.clone()))
                        .collect()
                };
                assert_eq!(
                    kern(&simd.inspector_kernels),
                    kern(&interp.inspector_kernels)
                );
                assert_eq!(kern(&simd.executor_kernels), kern(&interp.executor_kernels));
                assert_eq!(
                    simd.modeled_time_s.to_bits(),
                    interp.modeled_time_s.to_bits(),
                    "modeled time drifted at {threads} threads / {dispatch:?} / width {strip_width}"
                );
                if strip_width == 32 && threads == 1 {
                    assert_eq!(simd.alignments, reference.alignments);
                }
            }
        }
    }

    #[test]
    fn bitvector_backend_runs_the_pipeline_end_to_end() {
        let (t, q, anchors, span) = demo(110);
        let mut cfg = config();
        cfg.extend_backend = ExtendBackend::Bitvector;
        // Thresholds are regime-specific: in the unit regime a score of
        // 100 is ~50 well-aligned bases.
        cfg.scoring.gapped_threshold = 100;
        let report = run_fastz(&t, &q, &anchors, span, &cfg);
        assert!(!report.alignments.is_empty());
        // The bitvector engine tracebacks in place: no executor residue.
        assert_eq!(report.stats.executor_problems, 0);
        assert_eq!(report.stats.eager_resolved, report.stats.problems);
        assert!(report.stats.bitvec.windows > 0);
        let tc = t.codes();
        let qc = q.codes();
        for a in &report.alignments {
            assert!(a.is_consistent(&t, &q), "{a}");
            // Unit-score identity over the spliced script: +2 per match,
            // −1 per mismatch, −2 per gap base ((i+j) − 3·ed summed).
            let (mut ti, mut qi, mut unit) = (a.target_start, a.query_start, 0i32);
            for op in &a.ops {
                match *op {
                    EditOp::Diag(n) => {
                        for k in 0..n as usize {
                            unit += if tc[ti + k] == qc[qi + k] { 2 } else { -1 };
                        }
                        ti += n as usize;
                        qi += n as usize;
                    }
                    EditOp::GapQ(n) => {
                        ti += n as usize;
                        unit -= 2 * n as i32;
                    }
                    EditOp::GapT(n) => {
                        qi += n as usize;
                        unit -= 2 * n as i32;
                    }
                }
            }
            assert_eq!(unit, a.score, "{a}");
        }
        // Same determinism contract as y-drop: worker count and dispatch
        // mode never reach the results.
        for (threads, dispatch) in [(4, HostDispatch::Stealing), (3, HostDispatch::Static)] {
            let run = run_fastz(
                &t,
                &q,
                &anchors,
                span,
                &FastZConfig {
                    sim_threads: threads,
                    host_dispatch: dispatch,
                    ..cfg.clone()
                },
            );
            assert_eq!(run.alignments, report.alignments);
            assert_eq!(run.bin_counts, report.bin_counts);
            assert_eq!(
                run.modeled_time_s.to_bits(),
                report.modeled_time_s.to_bits()
            );
        }
    }

    #[test]
    fn bitvector_backend_is_sanitizer_clean() {
        let (t, q, anchors, span) = demo(111);
        let mut cfg = config();
        cfg.extend_backend = ExtendBackend::Bitvector;
        cfg.scoring.gapped_threshold = 100;
        cfg.sanitize = true;
        let report = run_fastz(&t, &q, &anchors, span, &cfg);
        let rep = report.sanitize.as_ref().expect("sanitize report");
        assert!(rep.is_clean(), "findings: {:?}", rep.findings);
        assert!(rep.shared_writes > 0, "bitvector rows hit the scratchpad");
        assert!(rep.barriers > 0, "DP/traceback stages are barrier-fenced");
    }

    #[test]
    fn pool_telemetry_reaches_the_sink() {
        let (t, q, anchors, span) = demo(109);
        let mut rec = fastz_obs::Recorder::new();
        let cfg = FastZConfig {
            sim_threads: 1,
            ..config()
        };
        run_fastz_observed(
            &t,
            &q,
            &anchors,
            span,
            &cfg,
            &ResilienceConfig::disabled(),
            &mut rec,
        );
        let reg = &rec.registry;
        assert_eq!(reg.gauge(names::POOL_WORKERS), Some(1.0));
        // Inspector + at least one executor bin.
        assert!(reg.counter(names::POOL_PHASES_TOTAL).unwrap() >= 2);
        // Every problem ran exactly once: inspector problems plus the
        // executor residue.
        let tasks = reg.counter(names::POOL_TASKS_TOTAL).unwrap();
        assert_eq!(
            tasks,
            (anchors.len() * 2) as u64 + reg.counter(names::EXECUTOR_PROBLEMS_TOTAL).unwrap()
        );
        assert_eq!(reg.counter(names::POOL_STEALS_TOTAL), Some(0));
        assert_eq!(reg.gauge(names::POOL_OCCUPANCY_RATIO), Some(1.0));
        // Executor bins reuse traceback buffers after the first lease.
        let hits = reg.counter(names::ARENA_TB_HITS_TOTAL).unwrap();
        let misses = reg.counter(names::ARENA_TB_MISSES_TOTAL).unwrap();
        assert_eq!(
            hits + misses,
            reg.counter(names::EXECUTOR_PROBLEMS_TOTAL).unwrap()
        );
        assert!(hits >= 1, "no arena reuse at all ({hits}/{misses})");
    }
}
