//! GenASM/Scrooge-style bitvector extension backend.
//!
//! This is a *second algorithm*, not a fourth implementation of affine
//! y-drop: windowed Bitap/GenASM edit-distance DP over 64-bit dead
//! masks, with Scrooge-flavored work reductions and a traceback that
//! reconstructs a concrete edit script. It exists for three reasons
//! (ROADMAP item 5):
//!
//! * a cheap reject rung for the alignment service ([`prefilter_anchors`]
//!   upper-bounds the y-drop score an anchor could possibly reach and
//!   drops anchors that provably cannot clear `gapped_threshold`);
//! * a short-read / high-divergence workload where affine gap modeling
//!   is overkill and unit-cost edit distance is the natural regime;
//! * a genuinely independent implementation the conformance suite can
//!   differential-test *across algorithms* — see
//!   `fastz-conformance::crossalg` for the exact agreement contract.
//!
//! # Representation
//!
//! Each window holds up to 64 pattern (query) rows in one `u64` per
//! edit budget `d`: bit `b` of `R[d]` is **1 when pattern prefix
//! `b+1` is dead at column `j`** (edit distance > `d`), 0 when alive.
//! The dead-mask convention makes the Myers-style column step four
//! AND/shift operations per budget row, and makes "entirely negative"
//! literally the all-ones word. Aliveness is monotone in `d`
//! (`alive(R[d]) ⊆ alive(R[d+1])`), so checking `R[k]` for all-dead
//! covers every budget.
//!
//! # Scoring regime
//!
//! The backend scores in the **unit-cost regime**: a cell reached with
//! `ed` unit edits at pattern extent `i` / text extent `j` scores
//! `(i + j) − 3·ed` (match +2, edit −1 relative to a match at either
//! end — equivalently match +2, mismatch −1, gap base −2). This is
//! exactly the affine scheme `match=2, mismatch=−1, gaps=(open 0,
//! extend 2)`, which is where the cross-algorithm agreement contract
//! lives: on that scheme, affine y-drop (with pruning disabled) and
//! this engine must find the same optimum.
//!
//! # SENE and DENT
//!
//! Scrooge's reductions, realized against this storage scheme:
//!
//! * **SENE — skip entirely-negative windows.** A column whose `R[k]`
//!   is all-dead can never revive (an all-dead column forces `j > k`,
//!   which kills the prefix-0 escape row; see the proof in DESIGN.md),
//!   so the sweep stops early and the remaining columns are skipped;
//!   a window with no live end-bit candidate at all stops the whole
//!   extension. Both are counted in [`BitvecStats::sene_skips`].
//! * **DENT — discard entirely-negative traceback rows.** All-dead
//!   rows are never written to the shared-memory traceback store; the
//!   traceback walk treats an absent row as all-dead. Lossless by
//!   construction (the walk only ever queries alive bits), and counted
//!   in [`BitvecStats::dent_discards`].

use fastz_align::{push_op, score, EditOp};
use fastz_genome::{Scoring, Sequence};
use fastz_gpu_sim::sanitize::stage as san_stage;
use fastz_gpu_sim::{SharedMem, WarpCounters};
use fastz_seed::Anchor;

/// Which extension algorithm runs the one-sided problems.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExtendBackend {
    /// Affine-gap y-drop on the warp wavefront engine (the default).
    #[default]
    YDrop,
    /// GenASM/Scrooge-style bitvector edit alignment (unit-cost regime).
    Bitvector,
}

impl ExtendBackend {
    /// Stable name for fingerprints and reports.
    pub fn name(self) -> &'static str {
        match self {
            ExtendBackend::YDrop => "ydrop",
            ExtendBackend::Bitvector => "bitvector",
        }
    }
}

/// Planted bitvector bugs for the cross-algorithm mutation corpus.
///
/// Everything except `None` deliberately mis-implements one detail the
/// conformance drill must catch. The production path never sets these;
/// the variants exist so `crates/conformance/tests/bitvec_mutation.rs`
/// can prove the oracle has teeth.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BitvecMutation {
    /// The faithful engine.
    #[default]
    None,
    /// Window commit advances the text base one short on every
    /// non-final window.
    WindowEdgeOffByOne,
    /// The match-term shift-in bit tests `j <= d` instead of
    /// `j - 1 > d`.
    WrongShiftInBit,
    /// SENE's all-dead test reads the budget-0 row instead of the
    /// budget-k row, truncating live extensions.
    SeneSkipsLive,
    /// DENT discards any row whose *top* window bit is dead, dropping
    /// rows that still carry live low bits a real traceback needs.
    DentDropsReal,
    /// Candidate scores wrap through `i32::MIN` instead of saturating
    /// through [`score::add_clamped`].
    SaturatingWrap,
    /// The pattern bitmask is built with bit `wlen-1-b` for pattern
    /// position `b` (reversed window).
    ReversedPatternMask,
}

impl BitvecMutation {
    /// Every planted bug, for corpus iteration.
    #[doc(hidden)]
    pub const ALL: [BitvecMutation; 6] = [
        BitvecMutation::WindowEdgeOffByOne,
        BitvecMutation::WrongShiftInBit,
        BitvecMutation::SeneSkipsLive,
        BitvecMutation::DentDropsReal,
        BitvecMutation::SaturatingWrap,
        BitvecMutation::ReversedPatternMask,
    ];

    /// Provenance label for divergence reports.
    #[doc(hidden)]
    pub fn name(self) -> &'static str {
        match self {
            BitvecMutation::None => "none",
            BitvecMutation::WindowEdgeOffByOne => "window_edge_off_by_one",
            BitvecMutation::WrongShiftInBit => "wrong_shift_in_bit",
            BitvecMutation::SeneSkipsLive => "sene_skips_live",
            BitvecMutation::DentDropsReal => "dent_drops_real",
            BitvecMutation::SaturatingWrap => "saturating_wrap",
            BitvecMutation::ReversedPatternMask => "reversed_pattern_mask",
        }
    }
}

/// Bitvector engine tuning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitvecConfig {
    /// Pattern rows per window (1..=64).
    pub window: usize,
    /// Rows re-examined by the next window (< `window`).
    pub overlap: usize,
    /// Edit budget per window (1..=63).
    pub k: usize,
    /// Planted bug selector (test seam; `None` in production).
    #[doc(hidden)]
    pub mutation: BitvecMutation,
}

impl Default for BitvecConfig {
    fn default() -> BitvecConfig {
        BitvecConfig {
            window: 64,
            overlap: 16,
            k: 31,
            mutation: BitvecMutation::None,
        }
    }
}

impl BitvecConfig {
    /// Panics on geometry the bit-parallel step cannot represent.
    pub fn validate(&self) {
        assert!(
            (1..=64).contains(&self.window),
            "bitvec window {} outside 1..=64",
            self.window
        );
        assert!(
            self.overlap < self.window,
            "bitvec overlap {} must be < window {}",
            self.overlap,
            self.window
        );
        assert!(
            (1..=63).contains(&self.k),
            "bitvec edit budget {} outside 1..=63",
            self.k
        );
    }

    /// Largest edit budget whose traceback store fits `capacity` bytes
    /// of shared memory at this window size.
    fn effective_k(&self, capacity: usize) -> usize {
        let mut k = self.k;
        while k > 1 && (self.window + k + 1) * (k + 1) * 8 > capacity {
            k -= 1;
        }
        k
    }
}

/// Work reduction counters for one extension.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BitvecStats {
    /// Windows processed.
    pub windows: u64,
    /// SENE events: columns skipped after an all-dead column, plus
    /// windows abandoned with no live end-bit candidate.
    pub sene_skips: u64,
    /// DENT events: all-dead traceback rows never written.
    pub dent_discards: u64,
}

impl BitvecStats {
    /// Accumulates another extension's counters.
    pub fn merge(&mut self, other: &BitvecStats) {
        self.windows += other.windows;
        self.sene_skips += other.sene_skips;
        self.dent_discards += other.dent_discards;
    }
}

/// Result of one one-sided bitvector extension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitvecExtension {
    /// Best unit-regime score found (≥ 0; `(i + j) − 3·ed`).
    pub best_score: i32,
    /// Query (pattern) bases consumed at the best cell.
    pub best_i: usize,
    /// Target (text) bases consumed at the best cell.
    pub best_j: usize,
    /// Unit edits on the returned script (exact for the script;
    /// equals the true edit distance of `(best_i, best_j)` whenever
    /// the best cell fell in the first window).
    pub edit_distance: u32,
    /// Edit script from the origin to the best cell.
    pub ops: Vec<EditOp>,
    /// SENE/DENT accounting.
    pub stats: BitvecStats,
    /// Work counters for the timing model.
    pub counters: WarpCounters,
    /// Maximum pattern row touched.
    pub explored_rows: usize,
    /// Maximum text column touched.
    pub explored_cols: usize,
}

impl BitvecExtension {
    fn origin() -> BitvecExtension {
        BitvecExtension {
            best_score: 0,
            best_i: 0,
            best_j: 0,
            edit_distance: 0,
            ops: Vec::new(),
            stats: BitvecStats::default(),
            counters: WarpCounters::default(),
            explored_rows: 0,
            explored_cols: 0,
        }
    }
}

// Internal unit-step codes used before run-length encoding.
const U_MATCH: u8 = 0;
const U_SUB: u8 = 1;
/// Consumes text only (target base against a gap in the query).
const U_INS: u8 = 2;
/// Consumes pattern only (query base against a gap in the target).
const U_DEL: u8 = 3;

fn units_to_ops(units: &[u8]) -> Vec<EditOp> {
    let mut ops = Vec::new();
    for &u in units {
        let op = match u {
            U_MATCH | U_SUB => EditOp::Diag(1),
            U_INS => EditOp::GapQ(1),
            _ => EditOp::GapT(1),
        };
        push_op(&mut ops, op);
    }
    ops
}

/// [`bitvec_extend_in`] with a private scratchpad (tests, one-shots).
pub fn bitvec_extend(text: &[u8], pattern: &[u8], cfg: &BitvecConfig) -> BitvecExtension {
    let mut shared = SharedMem::new((cfg.window + cfg.k + 1) * (cfg.k + 1) * 8);
    bitvec_extend_in(text, pattern, cfg, &mut shared)
}

/// One-sided windowed bitvector extension from the origin.
///
/// `pattern` is the query side (rows), `text` the target side
/// (columns); both are already oriented (the pipeline passes reversed
/// slices for the left side exactly as it does for the warp engine).
/// Traceback rows live in `shared` under the same sanitizer hooks as
/// the wavefront kernels, and the work counters price through
/// `price_task` unchanged.
pub fn bitvec_extend_in(
    text: &[u8],
    pattern: &[u8],
    cfg: &BitvecConfig,
    shared: &mut SharedMem,
) -> BitvecExtension {
    cfg.validate();
    let m = pattern.len();
    let n = text.len();
    let mu = cfg.mutation;
    let mut out = BitvecExtension::origin();
    shared.sanitize_stage(san_stage::BITVECTOR);
    if m == 0 || n == 0 {
        return out;
    }
    let k = cfg.effective_k(shared.capacity());
    let kp1 = k + 1;

    // Committed path state: the greedy window chain from the origin.
    let mut pbase = 0usize;
    let mut tbase = 0usize;
    let mut ed_acc = 0u32;
    let mut committed: Vec<u8> = Vec::new();

    let mut cur = vec![0u64; kp1];
    let mut new = vec![0u64; kp1];

    while pbase < m {
        let wlen = cfg.window.min(m - pbase);
        let tlen = (wlen + k).min(n - tbase);
        if tlen == 0 {
            // Text exhausted: pattern-only deletions can never improve
            // the unit score, so the extension ends here.
            break;
        }
        out.stats.windows += 1;
        let last = pbase + wlen == m;
        out.explored_rows = out.explored_rows.max(pbase + wlen);

        // Pattern mismatch masks: pm[c] bit b = 1 iff pattern[b] != c.
        let mut mat = [0u64; 4];
        // bound: pbase + wlen <= m == pattern.len() — wlen is clamped
        // to the remaining pattern when the window is cut.
        for (b, &pc) in pattern[pbase..pbase + wlen].iter().enumerate() {
            let bit = if mu == BitvecMutation::ReversedPatternMask {
                wlen - 1 - b
            } else {
                b
            };
            mat[(pc & 3) as usize] |= 1u64 << bit;
        }
        let pm = [!mat[0], !mat[1], !mat[2], !mat[3]];
        out.counters.global_read += (wlen + tlen) as u64;

        let window_mask: u64 = if wlen == 64 { !0 } else { (1u64 << wlen) - 1 };
        let beyond = !window_mask;
        let ebit = 1u64 << (wlen - 1);
        let rows_total = (tlen + 1) * kp1;
        shared.reserve(rows_total * 8);
        // Host-side presence bitmap for DENT: the traceback never reads
        // a row that was discarded (the sanitizer's initcheck would —
        // correctly — flag such a read).
        let mut written = vec![false; rows_total];

        // Column 0: prefix i costs i deletions, so bit b is dead at
        // budget d iff b >= d.
        for (d, slot) in cur.iter_mut().enumerate() {
            *slot = ((!0u64) << d) | beyond;
        }
        for (d, &row) in cur.iter().enumerate() {
            store_row(
                shared,
                &mut written,
                &mut out,
                kp1,
                0,
                d,
                row,
                window_mask,
                ebit,
                mu,
            );
        }
        shared.sanitize_tick();

        // Best candidate found inside this window (window coordinates).
        let mut wbest: Option<(usize, usize, usize)> = None;
        // Cheapest live end-bit cell seen so far: (column, budget).
        let mut end_hit: Option<(usize, usize)> = None;
        scan_column(
            &cur,
            kp1,
            window_mask,
            0,
            pbase,
            tbase,
            ed_acc,
            mu,
            &mut out,
            &mut wbest,
        );
        if let Some(d) = (0..kp1).find(|&d| cur[d] & ebit == 0) {
            end_hit = Some((0, d));
        }

        let mut cols_done = tlen;
        for j in 1..=tlen {
            out.counters.steps += 1;
            out.counters.cells += (kp1 * wlen) as u64;
            out.counters.alu_ops += (kp1 * 6) as u64;
            // bound: tbase + tlen <= text.len() and 1 <= j <= tlen;
            // `& 3` caps the pm index at 3.
            let pmv = pm[(text[tbase + j - 1] & 3) as usize];
            for d in 0..kp1 {
                // Shift-in bits encode the analytic prefix-0 row:
                // prefix 0 at column j' is dead at budget d' iff j' > d'.
                let si_m = if mu == BitvecMutation::WrongShiftInBit {
                    u64::from(j <= d)
                } else {
                    u64::from(j - 1 > d)
                };
                let m_term = ((cur[d] << 1) | si_m) | pmv;
                let mut val = if d == 0 {
                    m_term
                } else {
                    let s_term = (cur[d - 1] << 1) | u64::from(j - 1 > d - 1); // bound: d >= 1 in this arm, d < kp1 == cur.len()
                    let i_term = cur[d - 1]; // bound: as above
                    let d_term = (new[d - 1] << 1) | u64::from(j > d - 1); // bound: d >= 1, d < kp1 == new.len()
                    m_term & s_term & i_term & d_term
                };
                val |= beyond;
                new[d] = val;
                store_row(
                    shared,
                    &mut written,
                    &mut out,
                    kp1,
                    j,
                    d,
                    val,
                    window_mask,
                    ebit,
                    mu,
                );
            }
            scan_column(
                &new,
                kp1,
                window_mask,
                j,
                pbase,
                tbase,
                ed_acc,
                mu,
                &mut out,
                &mut wbest,
            );
            if let Some(d) = (0..kp1).find(|&d| new[d] & ebit == 0) {
                match end_hit {
                    Some((_, bd)) if d > bd => {}
                    // `j` ascends, so `d <= bd` prefers the latest
                    // column among the cheapest end cells.
                    _ => end_hit = Some((j, d)),
                }
            }
            std::mem::swap(&mut cur, &mut new);
            shared.sanitize_tick();
            // SENE: an all-dead column at the full budget can never
            // revive (it forces j > k, closing the prefix-0 escape row).
            let dead_probe = if mu == BitvecMutation::SeneSkipsLive {
                cur[0]
            } else {
                cur[k]
            };
            if (dead_probe & window_mask) == window_mask {
                out.stats.sene_skips += (tlen - j) as u64;
                cols_done = j;
                break;
            }
        }
        out.explored_cols = out.explored_cols.max(tbase + cols_done);

        // Row store and walk are distinct accessor identities with a
        // barrier between them, exactly like wavefront → eager traceback.
        shared.sanitize_barrier();
        shared.sanitize_stage(san_stage::BITVECTOR_TRACEBACK);

        if let Some((bw, jw, dw)) = wbest {
            let units = traceback(
                shared,
                &written,
                kp1,
                text,
                pattern,
                pbase,
                tbase,
                bw,
                jw,
                dw,
                &mut out.counters,
            );
            let gi = pbase + bw + 1;
            let gj = tbase + jw;
            out.best_score = candidate_score(gi, gj, ed_acc + dw as u32, mu);
            out.best_i = gi;
            out.best_j = gj;
            out.edit_distance = ed_acc + dw as u32;
            out.ops = units_to_ops(&committed);
            for op in units_to_ops(&units) {
                push_op(&mut out.ops, op);
            }
        }

        let Some((je, de)) = end_hit else {
            // No prefix of this window survives the budget anywhere:
            // the whole remaining extension is entirely negative.
            out.stats.sene_skips += 1;
            break;
        };
        let units = traceback(
            shared,
            &written,
            kp1,
            text,
            pattern,
            pbase,
            tbase,
            wlen - 1,
            je,
            de,
            &mut out.counters,
        );
        let keep = if last { wlen } else { wlen - cfg.overlap };
        let mut consumed_p = 0usize;
        let mut consumed_t = 0usize;
        let mut edits = 0u32;
        let mut cut = units.len();
        for (idx, &u) in units.iter().enumerate() {
            if consumed_p == keep {
                cut = idx;
                break;
            }
            match u {
                U_MATCH => {
                    consumed_p += 1;
                    consumed_t += 1;
                }
                U_SUB => {
                    consumed_p += 1;
                    consumed_t += 1;
                    edits += 1;
                }
                U_INS => {
                    consumed_t += 1;
                    edits += 1;
                }
                _ => {
                    consumed_p += 1;
                    edits += 1;
                }
            }
        }
        committed.extend_from_slice(&units[..cut]);
        pbase += keep;
        let advance = if mu == BitvecMutation::WindowEdgeOffByOne && !last {
            consumed_t.saturating_sub(1)
        } else {
            consumed_t
        };
        tbase += advance;
        ed_acc += edits;
        if last {
            break;
        }
        shared.sanitize_barrier();
        shared.sanitize_stage(san_stage::BITVECTOR);
    }
    out
}

/// Unit-regime candidate score at global cell `(gi, gj)` with `ed` edits.
fn candidate_score(gi: usize, gj: usize, ed: u32, mu: BitvecMutation) -> i32 {
    if mu == BitvecMutation::SaturatingWrap {
        // Planted bug: raw arithmetic that wraps through i32::MIN.
        (i32::MIN + (gi + gj) as i32).wrapping_sub(3 * ed as i32)
    } else {
        score::add_clamped((gi + gj) as i32, -3 * (ed as i32))
    }
}

/// Scans one column's dead-mask rows for newly-alive cells and folds
/// the best-scoring one into the window candidate.
///
/// A cell that is alive at budget `d` but dead at `d-1` has exact
/// window edit distance `d`; among newly-alive bits of one `(j, d)`
/// the top bit dominates (the unit score grows with the pattern
/// extent), so one `leading_zeros` per budget row suffices.
#[allow(clippy::too_many_arguments)]
fn scan_column(
    rows: &[u64],
    kp1: usize,
    window_mask: u64,
    j: usize,
    pbase: usize,
    tbase: usize,
    ed_acc: u32,
    mu: BitvecMutation,
    out: &mut BitvecExtension,
    wbest: &mut Option<(usize, usize, usize)>,
) {
    for d in 0..kp1 {
        let fresh = (!rows[d]) & (if d == 0 { !0u64 } else { rows[d - 1] }) & window_mask; // bound: d >= 1 in this arm, d < kp1 == rows.len()
        if fresh == 0 {
            continue;
        }
        let b = 63 - fresh.leading_zeros() as usize;
        let sc = candidate_score(pbase + b + 1, tbase + j, ed_acc + d as u32, mu);
        if sc > out.best_score {
            // Stage the coordinates; the ops snapshot happens once per
            // window, after the rows are stored.
            out.best_score = sc;
            *wbest = Some((b, j, d));
        }
    }
}

/// Writes one dead-mask row into the shared traceback store unless
/// DENT discards it.
#[allow(clippy::too_many_arguments)]
fn store_row(
    shared: &mut SharedMem,
    written: &mut [bool],
    out: &mut BitvecExtension,
    kp1: usize,
    j: usize,
    d: usize,
    value: u64,
    window_mask: u64,
    ebit: u64,
    mu: BitvecMutation,
) {
    let discard = if mu == BitvecMutation::DentDropsReal {
        value & ebit != 0
    } else {
        (value & window_mask) == window_mask
    };
    if discard {
        out.stats.dent_discards += 1;
        return;
    }
    let idx = j * kp1 + d;
    shared.write_u32(idx * 8, value as u32);
    shared.write_u32(idx * 8 + 4, (value >> 32) as u32);
    written[idx] = true;
    out.counters.shared_bytes += 8;
}

fn tb_row(
    shared: &SharedMem,
    written: &[bool],
    kp1: usize,
    j: usize,
    d: usize,
    counters: &mut WarpCounters,
) -> u64 {
    let idx = j * kp1 + d;
    if !written[idx] {
        // DENT discarded this row: it was entirely dead.
        return !0u64;
    }
    counters.shared_bytes += 8;
    let lo = shared.read_u32(idx * 8) as u64;
    let hi = shared.read_u32(idx * 8 + 4) as u64;
    lo | (hi << 32)
}

/// Walks the stored rows from window cell `(b0, j0, d0)` back to the
/// window origin and returns forward-ordered unit steps.
///
/// Step priority is diagonal match, substitution, insertion (text
/// gap), deletion (pattern gap); `b = -1` is the analytic prefix-0 row
/// (alive iff `j <= d`). On the faithful engine the aliveness checks
/// always find a predecessor; the forced fallback steps only trigger
/// under planted mutations and produce scripts the self-consistency
/// checks reject.
#[allow(clippy::too_many_arguments)]
fn traceback(
    shared: &SharedMem,
    written: &[bool],
    kp1: usize,
    text: &[u8],
    pattern: &[u8],
    pbase: usize,
    tbase: usize,
    b0: usize,
    j0: usize,
    d0: usize,
    counters: &mut WarpCounters,
) -> Vec<u8> {
    let mut units = Vec::new();
    let mut b = b0 as isize;
    let mut j = j0;
    let mut d = d0;
    let alive = |b: isize, j: usize, d: usize, counters: &mut WarpCounters| -> bool {
        if b < 0 {
            return j <= d;
        }
        tb_row(shared, written, kp1, j, d, counters) & (1u64 << b) == 0
    };
    while b >= 0 {
        counters.scalar_ops += 1;
        shared.sanitize_tick();
        let pb = pattern[pbase + b as usize] & 3; // bound: 0 <= b < wlen and pbase + wlen <= pattern.len()
                                                  // bound: the `j >= 1` guard keeps tbase + j - 1 inside the
                                                  // window's text slice (tbase + tlen <= text.len(), j <= tlen).
        if j >= 1 && (text[tbase + j - 1] & 3) == pb && alive(b - 1, j - 1, d, counters) {
            units.push(U_MATCH);
            b -= 1;
            j -= 1;
        } else if d >= 1 && j >= 1 && alive(b - 1, j - 1, d - 1, counters) {
            units.push(U_SUB);
            b -= 1;
            j -= 1;
            d -= 1;
        } else if d >= 1 && j >= 1 && alive(b, j - 1, d - 1, counters) {
            units.push(U_INS);
            j -= 1;
            d -= 1;
        } else if d >= 1 && alive(b - 1, j, d - 1, counters) {
            units.push(U_DEL);
            b -= 1;
            d -= 1;
        } else if j >= 1 {
            units.push(U_INS);
            j -= 1;
            d = d.saturating_sub(1);
        } else {
            units.push(U_DEL);
            b -= 1;
            d = d.saturating_sub(1);
        }
    }
    // Prefix 0 at column j: the path opened with j text insertions.
    units.extend(std::iter::repeat_n(U_INS, j));
    counters.scalar_ops += j as u64;
    units.reverse();
    units
}

/// Dead-mask rows of a single bitvector window, exposed for the
/// per-window differential proptest (`tests/bitvec_step.rs`).
///
/// Returns, for each column `j in 0..=text.len()`, the `k+1` dead
/// masks `R[d]` over a window holding all of `pattern`
/// (`pattern.len() <= 64`).
#[doc(hidden)]
pub fn window_masks(text: &[u8], pattern: &[u8], k: usize) -> Vec<Vec<u64>> {
    let wlen = pattern.len();
    assert!((1..=64).contains(&wlen) && (1..=63).contains(&k));
    let window_mask: u64 = if wlen == 64 { !0 } else { (1u64 << wlen) - 1 };
    let beyond = !window_mask;
    let mut mat = [0u64; 4];
    for (b, &pc) in pattern.iter().enumerate() {
        mat[(pc & 3) as usize] |= 1u64 << b;
    }
    let pm = [!mat[0], !mat[1], !mat[2], !mat[3]];
    let mut cols = Vec::with_capacity(text.len() + 1);
    let mut cur: Vec<u64> = (0..=k).map(|d| ((!0u64) << d) | beyond).collect();
    cols.push(cur.clone());
    for j in 1..=text.len() {
        // bound: 1 <= j <= text.len(); `& 3` caps the pm index at 3.
        let pmv = pm[(text[j - 1] & 3) as usize];
        let mut new = vec![0u64; k + 1];
        for d in 0..=k {
            let m_term = ((cur[d] << 1) | u64::from(j - 1 > d)) | pmv;
            let mut val = if d == 0 {
                m_term
            } else {
                let s_term = (cur[d - 1] << 1) | u64::from(j - 1 > d - 1); // bound: d >= 1 in this arm, d <= k == cur.len() - 1
                let d_term = (new[d - 1] << 1) | u64::from(j > d - 1); // bound: d >= 1, d <= k == new.len() - 1
                m_term & s_term & cur[d - 1] & d_term // bound: as above
            };
            val |= beyond;
            new[d] = val;
        }
        cols.push(new.clone());
        cur = new;
    }
    cols
}

// ---------------------------------------------------------------------------
// Service pre-filter: a sound cheap-reject rung ahead of full y-drop.
// ---------------------------------------------------------------------------

/// Geometry of the anchor reject probe.
///
/// The probe is *conclusive* — able to reject — only when its
/// rectangle covers the whole flank, i.e. `rows`/`cols` ≥ the
/// pipeline's `max_extension`. On longer flanks the frontier tail
/// grows by the best substitution score per unprobed row, so the bound
/// never closes and every anchor is (soundly) kept; services that want
/// the rung to bite should size the probe past their extension cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefilterConfig {
    /// Pattern rows probed per side.
    pub rows: usize,
    /// Text columns probed per side.
    pub cols: usize,
    /// Edit budget of the bitvector quick-accept tier (≤ 63).
    pub k: usize,
}

impl Default for PrefilterConfig {
    fn default() -> PrefilterConfig {
        PrefilterConfig {
            rows: 256,
            cols: 256,
            k: 24,
        }
    }
}

/// Upper-bounds the y-drop score one side could contribute, or `None`
/// when the probe cannot bound it (the anchor must then be kept).
///
/// Two tiers:
///
/// 1. **Bitvector quick-accept.** One GenASM window over the side's
///    first `min(rows, 64)` pattern rows: if the window's end bit goes
///    alive anywhere within the edit budget, the flank is homologous
///    enough that rejecting is hopeless — return `None` immediately.
///    On production (mostly-homologous) anchor sets this bit-parallel
///    tier answers almost every probe; only anchors it abandons via
///    SENE fall through to tier 2.
/// 2. **Exact mini-DP with a frontier tail.** A pruning-free Gotoh
///    pass over the `P×C` probe rectangle gives exact cell scores.
///    When the probe covers the whole flank (the default config is
///    sized past `max_extension`, so it usually does) the bound is the
///    exact side optimum — on random flanks the gapped optimum hovers
///    near zero rather than drifting, which is precisely why hopeless
///    anchors are rejectable at all. Cells past the probed columns are
///    bounded by the column-`C` frontier: every path to `(i, j > C)`
///    crosses `(i', C)` once with prefix ≤ `S(i', C)` and suffix ≤
///    `Mm·(i − i')` (each aligned pair consumes one pattern row and
///    scores at most the best substitution entry; gap steps score
///    ≤ 0). A row whose exact max *and* frontier tail both fall below
///    `−ydrop` is pruned in full by the engine — y-drop's running best
///    never drops below the origin's 0 — so the engine never explores
///    past it and the side's best is the max bound over the rows above
///    the cut. No cut inside the probe and pattern rows left over ⇒
///    unbounded, keep the anchor.
fn side_upper_bound(
    text: &[u8],
    pattern: &[u8],
    scoring: &Scoring,
    cfg: &PrefilterConfig,
) -> Option<i64> {
    let p = pattern.len().min(cfg.rows.max(1));
    if p == 0 {
        return Some(0);
    }
    let cc = text.len().min(cfg.cols);

    // Tier 1: bitvector quick-accept.
    let w = p.min(64);
    let k = cfg.k.clamp(1, 63);
    let bt = &text[..text.len().min(w + k)];
    let masks = window_masks(bt, &pattern[..w], k);
    let ebit = 1u64 << (w - 1);
    if masks.iter().any(|rows| rows[k] & ebit == 0) {
        return None;
    }

    // Tier 2: exact affine mini-DP over the probe rectangle.
    let neg = i64::MIN / 4;
    let osc = i64::from(scoring.gaps.open_score());
    let esc = i64::from(scoring.gaps.extend_score());
    let ydrop = i64::from(scoring.ydrop);
    let mut mm = i64::MIN;
    for a in 0..5u8 {
        for b in 0..5u8 {
            mm = mm.max(i64::from(scoring.subst.score(a, b)));
        }
    }
    let width = cc + 1;
    // Previous row of cell scores S = max(M, Ix, Iy) and the Iy state.
    let mut s_prev = vec![0i64; width];
    let mut iy_prev = vec![neg; width];
    for (j, slot) in s_prev.iter_mut().enumerate().skip(1) {
        *slot = osc + esc * (j as i64 - 1);
    }
    let tail_live = cc < text.len();
    // Frontier recurrence: f(i) = max(f(i-1) + Mm, S(i, C)).
    let mut frontier = s_prev[cc];
    let mut side = 0i64;
    let mut cut = false;
    let mut s_row = vec![0i64; width];
    let mut iy_row = vec![neg; width];
    for i in 1..=p {
        let mut ix = neg;
        s_row[0] = osc + esc * (i as i64 - 1);
        iy_row[0] = s_row[0];
        let mut row_max = neg;
        for j in 1..=cc {
            let sub = i64::from(scoring.subst.score(text[j - 1], pattern[i - 1]));
            let m = s_prev[j - 1] + sub;
            ix = (s_row[j - 1] + osc).max(ix + esc);
            let iy = (s_prev[j] + osc).max(iy_prev[j] + esc);
            let s = m.max(ix).max(iy);
            s_row[j] = s;
            iy_row[j] = iy;
            row_max = row_max.max(s);
        }
        frontier = (frontier + mm).max(s_row[cc]);
        let bound = if tail_live {
            row_max.max(frontier)
        } else {
            row_max
        };
        side = side.max(bound);
        std::mem::swap(&mut s_prev, &mut s_row);
        std::mem::swap(&mut iy_prev, &mut iy_row);
        if bound < -ydrop {
            cut = true;
            break;
        }
    }
    if cut || p == pattern.len() {
        Some(side.max(0))
    } else {
        None
    }
}

/// Applies the bitvector cheap-reject rung to a request's anchors.
///
/// Returns the anchors that might still clear `gapped_threshold` and
/// the number rejected. Soundness contract (drilled by
/// `crates/serve/tests/bitvec_prefilter.rs`): an anchor is rejected
/// only when the sum of both sides' provable score upper bounds and
/// the exact seed score is strictly below the threshold — so the set
/// of alignments the pipeline emits is bit-identical with the rung on
/// or off. The probe runs host-side (it is a pre-screen, not a kernel)
/// and is not priced into modeled GPU time.
pub fn prefilter_anchors(
    target: &Sequence,
    query: &Sequence,
    anchors: &[Anchor],
    seed_span: usize,
    scoring: &Scoring,
    max_extension: usize,
    cfg: &PrefilterConfig,
) -> (Vec<Anchor>, usize) {
    let tc = target.codes();
    let qc = query.codes();
    let mut kept = Vec::with_capacity(anchors.len());
    let mut rejected = 0usize;
    let mut rev_t = Vec::new();
    let mut rev_q = Vec::new();
    for &a in anchors {
        let t0 = a.target_pos as usize;
        let q0 = a.query_pos as usize;
        let mut seed = 0i64;
        for s in 0..seed_span {
            seed += i64::from(scoring.subst.score(tc[t0 + s], qc[q0 + s]));
        }
        let ts = t0.saturating_sub(max_extension);
        let qs = q0.saturating_sub(max_extension);
        rev_t.clear();
        rev_q.clear();
        rev_t.extend(tc[ts..t0].iter().rev());
        rev_q.extend(qc[qs..q0].iter().rev());
        let left = side_upper_bound(&rev_t, &rev_q, scoring, cfg);
        let te = tc.len().min(t0 + seed_span + max_extension);
        let qe = qc.len().min(q0 + seed_span + max_extension);
        let right = side_upper_bound(
            &tc[t0 + seed_span..te],
            &qc[q0 + seed_span..qe],
            scoring,
            cfg,
        );
        let reject = match (left, right) {
            (Some(l), Some(r)) => l + seed + r < i64::from(scoring.gapped_threshold),
            _ => false,
        };
        if reject {
            rejected += 1;
        } else {
            kept.push(a);
        }
    }
    (kept, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastz_align::ydrop::NEG_INF;

    fn codes(s: &str) -> Vec<u8> {
        s.bytes()
            .map(|b| match b {
                b'A' => 0,
                b'C' => 1,
                b'G' => 2,
                _ => 3,
            })
            .collect()
    }

    fn ops_extent(ops: &[EditOp]) -> (usize, usize) {
        let (mut i, mut j) = (0usize, 0usize);
        for op in ops {
            match *op {
                EditOp::Diag(n) => {
                    i += n as usize;
                    j += n as usize;
                }
                EditOp::GapQ(n) => j += n as usize,
                EditOp::GapT(n) => i += n as usize,
            }
        }
        (i, j)
    }

    fn script_edits(text: &[u8], pattern: &[u8], ops: &[EditOp]) -> u32 {
        let (mut i, mut j, mut ed) = (0usize, 0usize, 0u32);
        for op in ops {
            match *op {
                EditOp::Diag(n) => {
                    for _ in 0..n {
                        if pattern[i] & 3 != text[j] & 3 {
                            ed += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
                EditOp::GapQ(n) => {
                    j += n as usize;
                    ed += n;
                }
                EditOp::GapT(n) => {
                    i += n as usize;
                    ed += n;
                }
            }
        }
        ed
    }

    #[test]
    fn identical_sequences_score_two_per_base() {
        let t = codes("ACGTACGTACGT");
        let r = bitvec_extend(&t, &t, &BitvecConfig::default());
        assert_eq!(r.best_score, 2 * t.len() as i32);
        assert_eq!((r.best_i, r.best_j), (t.len(), t.len()));
        assert_eq!(r.edit_distance, 0);
        assert_eq!(ops_extent(&r.ops), (t.len(), t.len()));
    }

    #[test]
    fn single_substitution_costs_three() {
        let t = codes("ACGTACGTAC");
        let mut q = t.clone();
        q[4] ^= 1;
        let r = bitvec_extend(&t, &q, &BitvecConfig::default());
        assert_eq!(r.best_score, 2 * t.len() as i32 - 3);
        assert_eq!(r.edit_distance, 1);
        assert_eq!(script_edits(&t, &q, &r.ops), 1);
    }

    #[test]
    fn script_is_self_consistent_across_windows() {
        // Long enough for several windows, with scattered edits.
        let mut t = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..400 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.push(((state >> 33) & 3) as u8);
        }
        let mut q = t.clone();
        for i in (13..390).step_by(37) {
            q[i] ^= 2;
        }
        let r = bitvec_extend(&t, &q, &BitvecConfig::default());
        assert_eq!(ops_extent(&r.ops), (r.best_i, r.best_j));
        assert_eq!(script_edits(&t, &q, &r.ops), r.edit_distance);
        assert_eq!(
            r.best_score,
            score::add_clamped((r.best_i + r.best_j) as i32, -3 * r.edit_distance as i32)
        );
        assert!(r.stats.windows > 1);
    }

    #[test]
    fn garbage_pair_stops_early_with_sene_skips() {
        let t = codes("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA");
        let q = codes("TTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTT");
        let cfg = BitvecConfig {
            k: 4,
            ..BitvecConfig::default()
        };
        let r = bitvec_extend(&t, &q, &cfg);
        assert_eq!(r.best_score, 0);
        assert!(r.stats.sene_skips > 0, "all-dead columns must be skipped");
    }

    #[test]
    fn dent_discards_are_lossless_here() {
        let t = codes("ACGTACGTACGTACGTACGTACGT");
        let mut q = t.clone();
        q[3] ^= 1;
        q[17] ^= 2;
        let tight = BitvecConfig {
            k: 3,
            ..BitvecConfig::default()
        };
        let r = bitvec_extend(&t, &q, &tight);
        assert!(r.stats.dent_discards > 0, "tight budgets must discard rows");
        assert_eq!(script_edits(&t, &q, &r.ops), r.edit_distance);
        assert_eq!(ops_extent(&r.ops), (r.best_i, r.best_j));
    }

    #[test]
    fn clamped_scores_never_wrap_near_i32_min() {
        // An absurd edit count through add_clamped floors at NEG_INF
        // instead of wrapping positive like the planted mutation does.
        let clean = candidate_score(1, 1, u32::MAX / 8, BitvecMutation::None);
        assert_eq!(clean, NEG_INF);
        let wrapped = candidate_score(1, 1, u32::MAX / 8, BitvecMutation::SaturatingWrap);
        assert!(wrapped != clean);
    }

    #[test]
    fn prefilter_keeps_everything_at_permissive_thresholds() {
        let t = Sequence::from_codes("t", codes("ACGTACGTACGTACGTACGTACGT"));
        let q = Sequence::from_codes("q", codes("ACGTACGTACGTACGTACGTACGT"));
        let anchors = vec![Anchor {
            target_pos: 4,
            query_pos: 4,
        }];
        let scoring = Scoring::bench_scaled();
        let (kept, rejected) = prefilter_anchors(
            &t,
            &q,
            &anchors,
            8,
            &scoring,
            64,
            &PrefilterConfig::default(),
        );
        assert_eq!(kept.len(), 1);
        assert_eq!(rejected, 0);
    }

    #[test]
    fn prefilter_rejects_hopeless_garbage_under_raised_threshold() {
        let mut tv = Vec::new();
        let mut qv = Vec::new();
        let mut state = 0x2545f4914f6cdd1du64;
        for i in 0..512 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            tv.push(((state >> 29) & 3) as u8);
            qv.push(((state >> 45).wrapping_add(i) & 3) as u8);
        }
        // Identical seed so the anchor itself is plausible.
        let span = 12;
        let (seed_t, seed_q) = (&tv[240..240 + span], &mut qv[240..240 + span]);
        seed_q.copy_from_slice(seed_t);
        let t = Sequence::from_codes("t", tv);
        let q = Sequence::from_codes("q", qv);
        let anchors = vec![Anchor {
            target_pos: 240,
            query_pos: 240,
        }];
        // A 12-base HOXD70 seed alone scores ~1150, so the rejection has
        // to come from the flank bounds: random flanks drift at roughly
        // -44/row, so both probe sides hit a provably dead row well
        // inside the default 96-row probe and contribute only their
        // small positive prefix bounds.
        let mut scoring = Scoring::bench_scaled();
        scoring.gapped_threshold = 2500;
        let (kept, rejected) = prefilter_anchors(
            &t,
            &q,
            &anchors,
            span,
            &scoring,
            200,
            &PrefilterConfig::default(),
        );
        assert_eq!(kept.len(), 0, "random flanks cannot reach 2500");
        assert_eq!(rejected, 1);
    }
}
