//! # FastZ — gapped whole-genome alignment on (simulated) GPUs
//!
//! Umbrella crate for the FastZ reproduction (SC '21): re-exports the
//! five workspace crates and hosts the cross-crate examples and
//! integration tests.
//!
//! ## End-to-end example
//!
//! ```
//! use fastz::align::{sequential_gapped, DriverConfig};
//! use fastz::core::{run_fastz, FastZConfig};
//! use fastz::genome::{evolve::generate_pair, PairParams, Scoring};
//! use fastz::gpu_sim::DeviceSpec;
//! use fastz::seed::{Workload, WorkloadParams};
//!
//! // 1. A small synthetic genome pair with planted homologies.
//! let pair = generate_pair(&PairParams {
//!     target_len: 6_000,
//!     query_len: 6_000,
//!     segments: 12,
//!     ..PairParams::small_demo("doc", 7)
//! });
//!
//! // 2. Seed it (LASTZ's 12-of-19 spaced seed) and filter.
//! let wl = Workload::build(&pair.target, &pair.query, &WorkloadParams::default());
//! assert!(!wl.is_empty());
//!
//! // 3. Sequential gapped LASTZ (the reference) ...
//! let scoring = Scoring::bench_scaled();
//! let lastz = sequential_gapped(
//!     &pair.target, &pair.query, &wl.anchors, wl.shape.span(),
//!     &DriverConfig::gapped(scoring.clone()),
//! );
//!
//! // 4. ... and FastZ on the simulated RTX 3080.
//! let cfg = FastZConfig::new(scoring, DeviceSpec::rtx3080_ampere());
//! let fz = run_fastz(&pair.target, &pair.query, &wl.anchors, wl.shape.span(), &cfg);
//!
//! // FastZ reproduces the reference alignments (§3.4's guarantee) and
//! // reports its modeled GPU time.
//! for a in &lastz.alignments {
//!     assert!(fz.alignments.contains(a));
//! }
//! assert!(fz.modeled_time_s > 0.0);
//! ```

pub use fastz_align as align;
pub use fastz_core as core;
pub use fastz_genome as genome;
pub use fastz_gpu_sim as gpu_sim;
pub use fastz_seed as seed;
